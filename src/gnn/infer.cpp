#include "gnn/infer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "gnn/infer_simd.hpp"
#include "obs/simd_counters.hpp"
#include "util/parallel.hpp"

namespace gnndse::gnn {

using tensor::Tensor;

namespace {

// Fan-out grains: keep each chunk at ~16k elements so tiny tensors (the
// [E,1] score columns, head activations) run inline while the [N,124]/
// [N,hidden] node matrices split across the pool.
constexpr std::int64_t kElemGrain = 1 << 14;

std::int64_t row_grain(std::int64_t cols) {
  return std::max<std::int64_t>(1, kElemGrain / std::max<std::int64_t>(1, cols));
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b))
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
}

}  // namespace

Tensor& InferenceSession::next(std::vector<std::int64_t> shape, bool zero) {
  if (cursor_ == slots_.size()) {
    slots_.emplace_back();
    high_water_.push_back(0);
  }
  Tensor& t = slots_[cursor_];
  t.reset_(std::move(shape), zero);
  high_water_[cursor_] =
      std::max(high_water_[cursor_], static_cast<std::size_t>(t.numel()));
  ++cursor_;
  return t;
}

std::size_t InferenceSession::workspace_bytes() const {
  std::size_t total = 0;
  for (std::size_t n : high_water_) total += n * sizeof(float);
  return total;
}

// ---------------------------------------------------------------------------
// Dense ops.
// ---------------------------------------------------------------------------

const Tensor& InferenceSession::matmul(const Tensor& a, const Tensor& b) {
  // Overwrite-mode kernel: same ascending-k sums as tensor::matmul's
  // zeroed-output + matmul_acc, minus the memset.
  Tensor& out = next({a.rows(), b.cols()}, /*zero=*/false);
  tensor::matmul_bias(a, b, nullptr, out);
  return out;
}

const Tensor& InferenceSession::linear(const Tensor& a, const Tensor& w,
                                       const Tensor* bias) {
  Tensor& out = next({a.rows(), w.cols()}, /*zero=*/false);
  tensor::matmul_bias(a, w, bias, out);
  return out;
}

const Tensor& InferenceSession::add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor& out = next(a.shape(), /*zero=*/false);
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  util::parallel_for(out.numel(), kElemGrain,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i)
                         op[i] = ap[i] + bp[i];
                     });
  return out;
}

const Tensor& InferenceSession::sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor& out = next(a.shape(), /*zero=*/false);
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  util::parallel_for(out.numel(), kElemGrain,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i)
                         op[i] = ap[i] - bp[i];
                     });
  return out;
}

const Tensor& InferenceSession::mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor& out = next(a.shape(), /*zero=*/false);
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  util::parallel_for(out.numel(), kElemGrain,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i)
                         op[i] = ap[i] * bp[i];
                     });
  return out;
}

const Tensor& InferenceSession::scale(const Tensor& a, float s) {
  Tensor& out = next(a.shape(), /*zero=*/false);
  const float* ap = a.data();
  float* op = out.data();
  util::parallel_for(out.numel(), kElemGrain,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i)
                         op[i] = ap[i] * s;
                     });
  return out;
}

const Tensor& InferenceSession::add_rowvec(const Tensor& a,
                                           const Tensor& bias) {
  if (bias.numel() != a.cols())
    throw std::invalid_argument("add_rowvec: bias length != cols");
  const std::int64_t r = a.rows(), c = a.cols();
  Tensor& out = next(a.shape(), /*zero=*/false);
  const float* ap = a.data();
  const float* bp = bias.data();
  float* op = out.data();
  util::parallel_for(r, row_grain(c), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i)
      for (std::int64_t j = 0; j < c; ++j)
        op[i * c + j] = ap[i * c + j] + bp[j];
  });
  return out;
}

const Tensor& InferenceSession::concat_cols(
    const std::vector<const Tensor*>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_cols: empty input");
  const std::int64_t r = parts[0]->rows();
  std::int64_t total_c = 0;
  for (const Tensor* p : parts) {
    if (p->rows() != r)
      throw std::invalid_argument("concat_cols: row count mismatch");
    total_c += p->cols();
  }
  Tensor& out = next({r, total_c}, /*zero=*/false);
  float* op = out.data();
  util::parallel_for(r, row_grain(total_c),
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         std::int64_t off = 0;
                         for (const Tensor* p : parts) {
                           const std::int64_t c = p->cols();
                           std::copy_n(p->data() + i * c, c,
                                       op + i * total_c + off);
                           off += c;
                         }
                       }
                     });
  return out;
}

const Tensor& InferenceSession::row_sum(const Tensor& a) {
  const std::int64_t r = a.rows(), c = a.cols();
  Tensor& out = next({r, 1}, /*zero=*/false);
  const float* ap = a.data();
  float* op = out.data();
  // Ascending-j accumulation per row, as in Tape::row_sum; rows are
  // independent so neither the fan-out nor the vector lanes reorder
  // additions.
  static obs::SimdDispatch dispatch("row_sum");
  const util::SimdLevel lvl = dispatch.level();
  util::parallel_for(r, row_grain(c), [&](std::int64_t begin, std::int64_t end) {
    simd::row_sum_range(lvl, ap, c, op, begin, end);
  });
  return out;
}

const Tensor& InferenceSession::mul_colbcast(const Tensor& col,
                                             const Tensor& x) {
  if (col.rows() != x.rows() || col.cols() != 1)
    throw std::invalid_argument("mul_colbcast: col must be [N,1]");
  const std::int64_t r = x.rows(), c = x.cols();
  Tensor& out = next({r, c}, /*zero=*/false);
  const float* cp = col.data();
  const float* xp = x.data();
  float* op = out.data();
  util::parallel_for(r, row_grain(c), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const float s = cp[i];
      for (std::int64_t j = 0; j < c; ++j) op[i * c + j] = s * xp[i * c + j];
    }
  });
  return out;
}

const Tensor& InferenceSession::residual_concat(const Tensor& r,
                                                const Tensor& m) {
  if (!r.same_shape(m))
    throw std::invalid_argument("residual_concat: r/m shape mismatch");
  const std::int64_t n = r.rows(), c = r.cols();
  Tensor& out = next({n, 3 * c}, /*zero=*/false);
  const float* rp = r.data();
  const float* mp = m.data();
  float* op = out.data();
  static obs::SimdDispatch dispatch("residual_concat");
  const util::SimdLevel lvl = dispatch.level();
  util::parallel_for(
      n, row_grain(3 * c), [&](std::int64_t begin, std::int64_t end) {
        simd::residual_concat_range(lvl, rp, mp, op, c, begin, end);
      });
  return out;
}

const Tensor& InferenceSession::gated_mix(const Tensor& m, const Tensor& beta,
                                          const Tensor& cat) {
  if (beta.rows() != m.rows() || beta.cols() != 1)
    throw std::invalid_argument("gated_mix: beta must be [N,1]");
  const std::int64_t r = m.rows(), c = m.cols();
  if (cat.rows() != r || cat.cols() != 3 * c)
    throw std::invalid_argument("gated_mix: cat must be [N,3c]");
  Tensor& out = next({r, c}, /*zero=*/false);
  const float* bp = beta.data();
  const float* mp = m.data();
  const float* dp = cat.data() + 2 * c;  // difference block, row stride 3c
  float* op = out.data();
  static obs::SimdDispatch dispatch("gated_mix");
  const util::SimdLevel lvl = dispatch.level();
  util::parallel_for(r, row_grain(c), [&](std::int64_t begin, std::int64_t end) {
    simd::gated_mix_range(lvl, mp, bp, dp, op, c, begin, end);
  });
  return out;
}

const Tensor& InferenceSession::mul_colbcast(const std::vector<float>& col,
                                             const Tensor& x) {
  if (static_cast<std::int64_t>(col.size()) != x.rows())
    throw std::invalid_argument("mul_colbcast: col length != rows");
  const std::int64_t r = x.rows(), c = x.cols();
  Tensor& out = next({r, c}, /*zero=*/false);
  const float* cp = col.data();
  const float* xp = x.data();
  float* op = out.data();
  util::parallel_for(r, row_grain(c), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const float s = cp[i];
      for (std::int64_t j = 0; j < c; ++j) op[i * c + j] = s * xp[i * c + j];
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// Nonlinearities: the exact per-element formulas of the Tape ops.
// ---------------------------------------------------------------------------

namespace {

template <typename F>
const Tensor& map_unary(InferenceSession& s, Tensor& out, const Tensor& in,
                        F f) {
  const float* ip = in.data();
  float* op = out.data();
  util::parallel_for(in.numel(), kElemGrain,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i)
                         op[i] = f(ip[i]);
                     });
  (void)s;
  return out;
}

}  // namespace

const Tensor& InferenceSession::relu(const Tensor& a) {
  Tensor& out = next(a.shape(), /*zero=*/false);
  return map_unary(*this, out, a, [](float x) { return x > 0 ? x : 0.0f; });
}

const Tensor& InferenceSession::leaky_relu(const Tensor& a,
                                           float negative_slope) {
  Tensor& out = next(a.shape(), /*zero=*/false);
  const float s = negative_slope;
  return map_unary(*this, out, a, [s](float x) { return x > 0 ? x : s * x; });
}

const Tensor& InferenceSession::elu(const Tensor& a, float alpha) {
  Tensor& out = next(a.shape(), /*zero=*/false);
  return map_unary(*this, out, a, [alpha](float x) {
    return x > 0 ? x : alpha * (std::exp(x) - 1.0f);
  });
}

const Tensor& InferenceSession::sigmoid(const Tensor& a) {
  Tensor& out = next(a.shape(), /*zero=*/false);
  return map_unary(*this, out, a, [](float x) {
    // Branch on sign for numerical stability (same as Tape::sigmoid).
    if (x >= 0) {
      const float e = std::exp(-x);
      return 1.0f / (1.0f + e);
    }
    const float e = std::exp(x);
    return e / (1.0f + e);
  });
}

const Tensor& InferenceSession::tanh(const Tensor& a) {
  Tensor& out = next(a.shape(), /*zero=*/false);
  return map_unary(*this, out, a, [](float x) { return std::tanh(x); });
}

// ---------------------------------------------------------------------------
// Graph primitives.
// ---------------------------------------------------------------------------

const Tensor& InferenceSession::gather_rows(
    const Tensor& a, const std::vector<std::int32_t>& idx) {
  const std::int64_t c = a.cols();
  Tensor& out = next({static_cast<std::int64_t>(idx.size()), c},
                     /*zero=*/false);
  const float* ap = a.data();
  float* op = out.data();
  util::parallel_for(static_cast<std::int64_t>(idx.size()), row_grain(c),
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i)
                         std::copy_n(
                             ap + static_cast<std::int64_t>(idx[
                                      static_cast<std::size_t>(i)]) * c,
                             c, op + i * c);
                     });
  return out;
}

const Tensor& InferenceSession::scatter_add_rows(
    const Tensor& a, const std::vector<std::int32_t>& idx,
    std::int64_t num_rows) {
  if (static_cast<std::int64_t>(idx.size()) != a.rows())
    throw std::invalid_argument("scatter_add_rows: index length != rows");
  const std::int64_t c = a.cols();
  Tensor& out = next({num_rows, c}, /*zero=*/true);
  const float* ap = a.data();
  float* op = out.data();
  // Serial on purpose: rows colliding on the same destination accumulate
  // in ascending source order, which defines the result bits.
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const float* src = ap + static_cast<std::int64_t>(i) * c;
    float* dst = op + static_cast<std::int64_t>(idx[i]) * c;
    for (std::int64_t j = 0; j < c; ++j) dst[j] += src[j];
  }
  return out;
}

const Tensor& InferenceSession::segment_softmax(
    const Tensor& scores, const std::vector<std::int32_t>& seg,
    std::int64_t num_segments) {
  if (scores.cols() != 1 ||
      static_cast<std::int64_t>(seg.size()) != scores.rows())
    throw std::invalid_argument("segment_softmax: scores must be [E,1]");
  const std::int64_t e = scores.rows();
  // Serial, mirroring Tape::segment_softmax: the seg_sum accumulation
  // order is part of the bit-identity contract. The scratch vectors are
  // intentionally local — they are O(num_segments) and cheap next to the
  // [E,*] tensors; promoting them into slots would complicate reuse
  // tracking for no measurable gain.
  std::vector<float> seg_max(static_cast<std::size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (std::int64_t i = 0; i < e; ++i)
    seg_max[static_cast<std::size_t>(seg[static_cast<std::size_t>(i)])] =
        std::max(seg_max[static_cast<std::size_t>(
                     seg[static_cast<std::size_t>(i)])],
                 scores.at(i, 0));
  Tensor& out = next({e, 1}, /*zero=*/false);
  std::vector<float> seg_sum(static_cast<std::size_t>(num_segments), 0.0f);
  for (std::int64_t i = 0; i < e; ++i) {
    const auto s = static_cast<std::size_t>(seg[static_cast<std::size_t>(i)]);
    const float v = std::exp(scores.at(i, 0) - seg_max[s]);
    out.at(i, 0) = v;
    seg_sum[s] += v;
  }
  // The max and exp/seg_sum passes above stay scalar: seg_sum's
  // accumulation order is part of the bit-identity contract and vector
  // exp approximations don't reproduce std::exp bits (see
  // docs/performance.md). The normalize pass is elementwise over
  // independent edges, so it dispatches.
  static obs::SimdDispatch dispatch("segment_softmax");
  const util::SimdLevel lvl = dispatch.level();
  simd::segment_softmax_normalize(lvl, seg_sum.data(), seg.data(), out.data(),
                                  0, e);
  return out;
}

const Tensor& InferenceSession::max_list(
    const std::vector<const Tensor*>& parts) {
  if (parts.empty()) throw std::invalid_argument("max_list: empty input");
  const Tensor& first = *parts[0];
  for (std::size_t k = 1; k < parts.size(); ++k)
    if (!parts[k]->same_shape(first))
      throw std::invalid_argument("max_list: shape mismatch");
  Tensor& out = next(first.shape(), /*zero=*/false);
  float* op = out.data();
  // Per element: copy the first layer, then fold the rest in ascending
  // layer order (same comparison sequence as Tape::max_list).
  util::parallel_for(first.numel(), kElemGrain,
                     [&](std::int64_t begin, std::int64_t end) {
                       std::copy_n(first.data() + begin, end - begin,
                                   op + begin);
                       for (std::size_t k = 1; k < parts.size(); ++k) {
                         const float* vp = parts[k]->data();
                         for (std::int64_t i = begin; i < end; ++i)
                           if (vp[i] > op[i]) op[i] = vp[i];
                       }
                     });
  return out;
}

// ---------------------------------------------------------------------------
// Fused edge-domain kernels (see infer.hpp for the op chains they replace).
// ---------------------------------------------------------------------------

const Tensor& InferenceSession::edge_attention_scores(
    const Tensor& q, const Tensor& k, const Tensor& ek,
    const std::vector<std::int32_t>& src, const std::vector<std::int32_t>& dst,
    float c) {
  const std::int64_t e = static_cast<std::int64_t>(src.size());
  const std::int64_t d = q.cols();
  if (k.cols() != d || ek.cols() != d ||
      static_cast<std::int64_t>(dst.size()) != e || ek.rows() != e)
    throw std::invalid_argument("edge_attention_scores: shape mismatch");
  Tensor& out = next({e, 1}, /*zero=*/false);
  const float* qp = q.data();
  const float* kp = k.data();
  const float* ep = ek.data();
  float* op = out.data();
  // Disjoint per-edge writes; ascending-d accumulation matches row_sum.
  static obs::SimdDispatch dispatch("edge_attention_scores");
  const util::SimdLevel lvl = dispatch.level();
  util::parallel_for(e, row_grain(d), [&](std::int64_t begin, std::int64_t end) {
    simd::edge_attention_scores_range(lvl, qp, kp, ep, src.data(), dst.data(),
                                      d, c, op, begin, end);
  });
  return out;
}

const Tensor& InferenceSession::edge_pair_scores(
    const Tensor& a, const Tensor& b, const std::vector<std::int32_t>& src,
    const std::vector<std::int32_t>& dst, float negative_slope) {
  if (a.cols() != 1 || b.cols() != 1)
    throw std::invalid_argument("edge_pair_scores: inputs must be [N,1]");
  const std::int64_t e = static_cast<std::int64_t>(src.size());
  Tensor& out = next({e, 1}, /*zero=*/false);
  const float* ap = a.data();
  const float* bp = b.data();
  const float s = negative_slope;
  float* op = out.data();
  static obs::SimdDispatch dispatch("edge_pair_scores");
  const util::SimdLevel lvl = dispatch.level();
  util::parallel_for(e, kElemGrain, [&](std::int64_t begin, std::int64_t end) {
    simd::edge_pair_scores_range(lvl, ap, bp, src.data(), dst.data(), s, op,
                                 begin, end);
  });
  return out;
}

const Tensor& InferenceSession::weighted_scatter_add(
    const float* alpha, const Tensor& v, const Tensor* ev,
    const std::vector<std::int32_t>& src, const std::vector<std::int32_t>& dst,
    std::int64_t num_rows) {
  const std::int64_t c = v.cols();
  if (ev && (ev->cols() != c ||
             ev->rows() != static_cast<std::int64_t>(src.size())))
    throw std::invalid_argument("weighted_scatter_add: ev shape mismatch");
  Tensor& out = next({num_rows, c}, /*zero=*/true);
  const float* vp = v.data();
  const float* ep = ev ? ev->data() : nullptr;
  float* op = out.data();
  // Serial over edges on purpose: colliding destinations accumulate in
  // ascending edge order, which defines the result bits (same as
  // scatter_add_rows). Only the per-edge column sweep vectorizes.
  static obs::SimdDispatch dispatch("weighted_scatter_add");
  const util::SimdLevel lvl = dispatch.level();
  simd::weighted_scatter_add_edges(lvl, alpha, vp, ep, src.data(), dst.data(),
                                   c, op,
                                   static_cast<std::int64_t>(src.size()));
  return out;
}

}  // namespace gnndse::gnn
