// Graph batching: disjoint union of program graphs so one forward pass
// covers a whole minibatch (node features stacked, edge indices offset,
// per-node graph ids for pooling).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace gnndse::gnn {

/// One graph ready for the GNN: features + edge index. `aux` is an
/// optional per-graph feature row (the pragma-only vector used by the M1
/// baseline).
struct GraphData {
  tensor::Tensor x;  // [N, Fn]
  tensor::Tensor e;  // [E, Fe]
  std::vector<std::int32_t> src;
  std::vector<std::int32_t> dst;
  tensor::Tensor aux;  // [Fa] or empty
};

/// Disjoint union of a minibatch of graphs.
struct GraphBatch {
  tensor::Tensor x;  // [N_total, Fn]
  tensor::Tensor e;  // [E_total, Fe]
  std::vector<std::int32_t> src, dst;          // edges (no self loops)
  std::vector<std::int32_t> src_sl, dst_sl;    // edges + one self loop per node
  std::vector<std::int32_t> node_graph;        // node -> graph id
  std::vector<float> gcn_coeff;                // per src_sl edge: 1/sqrt(d_u d_v)
  tensor::Tensor aux;                          // [B, Fa] or empty
  std::int64_t num_nodes = 0;
  std::int64_t num_graphs = 0;

  /// Node index ranges per graph (for mapping pooled rows back).
  std::vector<std::int64_t> node_offset;  // size num_graphs + 1
};

/// Builds the batch. All graphs must share feature dimensions.
GraphBatch make_batch(const std::vector<const GraphData*>& graphs);

}  // namespace gnndse::gnn
