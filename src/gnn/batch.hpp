// Graph batching: disjoint union of program graphs so one forward pass
// covers a whole minibatch (node features stacked, edge indices offset,
// per-node graph ids for pooling).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace gnndse::gnn {

/// One graph ready for the GNN: features + edge index. `aux` is an
/// optional per-graph feature row (the pragma-only vector used by the M1
/// baseline).
struct GraphData {
  tensor::Tensor x;  // [N, Fn]
  tensor::Tensor e;  // [E, Fe]
  std::vector<std::int32_t> src;
  std::vector<std::int32_t> dst;
  tensor::Tensor aux;  // [Fa] or empty
};

/// Disjoint union of a minibatch of graphs.
struct GraphBatch {
  tensor::Tensor x;  // [N_total, Fn]
  tensor::Tensor e;  // [E_total, Fe]
  std::vector<std::int32_t> src, dst;          // edges (no self loops)
  std::vector<std::int32_t> src_sl, dst_sl;    // edges + one self loop per node
  std::vector<std::int32_t> node_graph;        // node -> graph id
  std::vector<float> gcn_coeff;                // per src_sl edge: 1/sqrt(d_u d_v)
  tensor::Tensor aux;                          // [B, Fa] or empty
  std::int64_t num_nodes = 0;
  std::int64_t num_graphs = 0;

  /// Unique id per make_batch call (monotonic, never 0 for a built batch).
  /// The batch's topology and edge features are immutable once built, so
  /// the id keys caches of batch-derived values (TransformerConv keeps its
  /// edge-feature projections per batch id; the DSE skeleton cache hands
  /// the same batch to every chunk, turning those projections into
  /// once-per-sweep work).
  std::uint64_t batch_id = 0;

  /// Node index ranges per graph (for mapping pooled rows back).
  std::vector<std::int64_t> node_offset;  // size num_graphs + 1
};

/// Builds the batch. All graphs must share feature dimensions.
GraphBatch make_batch(const std::vector<const GraphData*>& graphs);

/// Braced-list convenience: `make_batch({&a, &b})`. Without it such calls
/// are ambiguous between the pointer-vector and span overloads (a span is
/// constructible from an iterator pair).
GraphBatch make_batch(std::initializer_list<const GraphData*> graphs);

/// Same, over a contiguous range — callers with a vector<GraphData> (the
/// DSE chunk loop) skip the pointer-vector indirection.
GraphBatch make_batch(std::span<const GraphData> graphs);

}  // namespace gnndse::gnn
