// Fused-kernel SIMD variants. Baseline-flag TU (portable binary); the
// AVX2/AVX-512 bodies opt into their ISA via per-function target
// attributes. FMA is never enabled in any variant: the scalar kernels
// round each multiply and add separately (-ffp-contract=off, matching the
// tape's op-by-op arithmetic), and the vector bodies use separate
// mul/add so every level produces identical bits.
#include "gnn/infer_simd.hpp"

#include <atomic>
#include <mutex>

#include "util/env.hpp"
#include "util/logging.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GNNDSE_X86 1
#endif

namespace gnndse::gnn::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar bodies — verbatim the loops infer.cpp ran before dispatch existed;
// these define the reference bits and handle every remainder.
// ---------------------------------------------------------------------------

void row_sum_scalar(const float* ap, std::int64_t c, float* op,
                    std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    float acc = 0.0f;
    for (std::int64_t j = 0; j < c; ++j) acc += ap[i * c + j];
    op[i] = acc;
  }
}

void residual_concat_scalar(const float* rp, const float* mp, float* op,
                            std::int64_t c, std::int64_t begin,
                            std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    float* orow = op + i * 3 * c;
    for (std::int64_t j = 0; j < c; ++j) {
      const float rv = rp[i * c + j], mv = mp[i * c + j];
      orow[j] = rv;
      orow[c + j] = mv;
      orow[2 * c + j] = rv - mv;
    }
  }
}

void gated_mix_scalar(const float* mp, const float* bp, const float* dp,
                      float* op, std::int64_t c, std::int64_t begin,
                      std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    const float s = bp[i];
    for (std::int64_t j = 0; j < c; ++j)
      op[i * c + j] = mp[i * c + j] + s * dp[i * 3 * c + j];
  }
}

void edge_attention_scores_scalar(const float* qp, const float* kp,
                                  const float* ep, const std::int32_t* src,
                                  const std::int32_t* dst, std::int64_t d,
                                  float scale, float* op, std::int64_t begin,
                                  std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    const float* qrow =
        qp + static_cast<std::int64_t>(dst[static_cast<std::size_t>(i)]) * d;
    const float* krow =
        kp + static_cast<std::int64_t>(src[static_cast<std::size_t>(i)]) * d;
    const float* erow = ep + i * d;
    float acc = 0.0f;
    for (std::int64_t j = 0; j < d; ++j) acc += qrow[j] * (krow[j] + erow[j]);
    op[i] = acc * scale;
  }
}

void edge_pair_scores_scalar(const float* ap, const float* bp,
                             const std::int32_t* src, const std::int32_t* dst,
                             float s, float* op, std::int64_t begin,
                             std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    const float x = ap[src[static_cast<std::size_t>(i)]] +
                    bp[dst[static_cast<std::size_t>(i)]];
    op[i] = x > 0 ? x : s * x;
  }
}

void weighted_scatter_add_scalar(const float* alpha, const float* vp,
                                 const float* ep, const std::int32_t* src,
                                 const std::int32_t* dst, std::int64_t c,
                                 float* op, std::int64_t num_edges) {
  for (std::int64_t i = 0; i < num_edges; ++i) {
    const float s = alpha[i];
    const float* vrow = vp + static_cast<std::int64_t>(src[i]) * c;
    float* drow = op + static_cast<std::int64_t>(dst[i]) * c;
    if (ep) {
      const float* erow = ep + i * c;
      for (std::int64_t j = 0; j < c; ++j) drow[j] += s * (vrow[j] + erow[j]);
    } else {
      for (std::int64_t j = 0; j < c; ++j) drow[j] += s * vrow[j];
    }
  }
}

void segment_softmax_normalize_scalar(const float* seg_sum,
                                      const std::int32_t* seg, float* op,
                                      std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    const float denom = seg_sum[seg[static_cast<std::size_t>(i)]];
    op[i] = denom > 0 ? op[i] / denom : 0.0f;
  }
}

#ifdef GNNDSE_X86

// ---------------------------------------------------------------------------
// AVX2 bodies. Gathers place 8 independent rows/edges in the lanes; each
// lane's arithmetic replays the scalar order exactly.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void row_sum_avx2(const float* ap,
                                                  std::int64_t c, float* op,
                                                  std::int64_t begin,
                                                  std::int64_t end) {
  std::int64_t i = begin;
  const __m256i stride = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
      _mm256_set1_epi32(static_cast<int>(c)));
  for (; i + 8 <= end; i += 8) {
    const float* base = ap + i * c;
    __m256 acc = _mm256_setzero_ps();
    for (std::int64_t j = 0; j < c; ++j)
      acc = _mm256_add_ps(acc, _mm256_i32gather_ps(base + j, stride, 4));
    _mm256_storeu_ps(op + i, acc);
  }
  row_sum_scalar(ap, c, op, i, end);
}

__attribute__((target("avx2"))) void residual_concat_avx2(
    const float* rp, const float* mp, float* op, std::int64_t c,
    std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    const float* rrow = rp + i * c;
    const float* mrow = mp + i * c;
    float* orow = op + i * 3 * c;
    std::int64_t j = 0;
    for (; j + 8 <= c; j += 8) {
      const __m256 rv = _mm256_loadu_ps(rrow + j);
      const __m256 mv = _mm256_loadu_ps(mrow + j);
      _mm256_storeu_ps(orow + j, rv);
      _mm256_storeu_ps(orow + c + j, mv);
      _mm256_storeu_ps(orow + 2 * c + j, _mm256_sub_ps(rv, mv));
    }
    for (; j < c; ++j) {
      const float rv = rrow[j], mv = mrow[j];
      orow[j] = rv;
      orow[c + j] = mv;
      orow[2 * c + j] = rv - mv;
    }
  }
}

__attribute__((target("avx2"))) void gated_mix_avx2(
    const float* mp, const float* bp, const float* dp, float* op,
    std::int64_t c, std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    const float s = bp[i];
    const __m256 sv = _mm256_set1_ps(s);
    const float* mrow = mp + i * c;
    const float* drow = dp + i * 3 * c;
    float* orow = op + i * c;
    std::int64_t j = 0;
    for (; j + 8 <= c; j += 8)
      _mm256_storeu_ps(
          orow + j,
          _mm256_add_ps(_mm256_loadu_ps(mrow + j),
                        _mm256_mul_ps(sv, _mm256_loadu_ps(drow + j))));
    for (; j < c; ++j) orow[j] = mrow[j] + s * drow[j];
  }
}

__attribute__((target("avx2"))) void edge_attention_scores_avx2(
    const float* qp, const float* kp, const float* ep, const std::int32_t* src,
    const std::int32_t* dst, std::int64_t d, float scale, float* op,
    std::int64_t begin, std::int64_t end) {
  std::int64_t i = begin;
  const __m256i dv = _mm256_set1_epi32(static_cast<int>(d));
  const __m256i estride =
      _mm256_mullo_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7), dv);
  for (; i + 8 <= end; i += 8) {
    const __m256i qoff = _mm256_mullo_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)), dv);
    const __m256i koff = _mm256_mullo_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)), dv);
    const float* ebase = ep + i * d;
    __m256 acc = _mm256_setzero_ps();
    for (std::int64_t j = 0; j < d; ++j) {
      const __m256 qv = _mm256_i32gather_ps(qp + j, qoff, 4);
      const __m256 kv = _mm256_i32gather_ps(kp + j, koff, 4);
      const __m256 ev = _mm256_i32gather_ps(ebase + j, estride, 4);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(qv, _mm256_add_ps(kv, ev)));
    }
    _mm256_storeu_ps(op + i, _mm256_mul_ps(acc, _mm256_set1_ps(scale)));
  }
  edge_attention_scores_scalar(qp, kp, ep, src, dst, d, scale, op, i, end);
}

// Gather-free edge_attention: per 8-edge block, walk d in 8-column chunks.
// Each edge contributes one vector of products per chunk (three unaligned
// row loads, mul, add — contiguous, no gathers); an in-register 8x8
// transpose then turns "edge-major products" into "column-major products"
// so one acc vector can accumulate all 8 edges with each lane adding its
// edge's columns in ascending-j order — the same order as the scalar body,
// hence bit-identical. The j-remainder finishes per lane in scalar from
// the spilled acc; the edge remainder falls through to the scalar body.
__attribute__((target("avx2"))) void edge_attention_scores_avx2_transpose(
    const float* qp, const float* kp, const float* ep, const std::int32_t* src,
    const std::int32_t* dst, std::int64_t d, float scale, float* op,
    std::int64_t begin, std::int64_t end) {
  std::int64_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const float* qrow[8];
    const float* krow[8];
    const float* erow[8];
    for (int e = 0; e < 8; ++e) {
      qrow[e] = qp + static_cast<std::int64_t>(dst[i + e]) * d;
      krow[e] = kp + static_cast<std::int64_t>(src[i + e]) * d;
      erow[e] = ep + (i + e) * d;
    }
    __m256 acc = _mm256_setzero_ps();
    std::int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      __m256 p[8];
      for (int e = 0; e < 8; ++e)
        p[e] = _mm256_mul_ps(_mm256_loadu_ps(qrow[e] + j),
                             _mm256_add_ps(_mm256_loadu_ps(krow[e] + j),
                                           _mm256_loadu_ps(erow[e] + j)));
      // 8x8 transpose (unpack / shuffle / permute2f128): t[c] lane e ends
      // up holding edge e's product for column j+c.
      const __m256 s0 = _mm256_unpacklo_ps(p[0], p[1]);
      const __m256 s1 = _mm256_unpackhi_ps(p[0], p[1]);
      const __m256 s2 = _mm256_unpacklo_ps(p[2], p[3]);
      const __m256 s3 = _mm256_unpackhi_ps(p[2], p[3]);
      const __m256 s4 = _mm256_unpacklo_ps(p[4], p[5]);
      const __m256 s5 = _mm256_unpackhi_ps(p[4], p[5]);
      const __m256 s6 = _mm256_unpacklo_ps(p[6], p[7]);
      const __m256 s7 = _mm256_unpackhi_ps(p[6], p[7]);
      const __m256 u0 = _mm256_shuffle_ps(s0, s2, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u1 = _mm256_shuffle_ps(s0, s2, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 u2 = _mm256_shuffle_ps(s1, s3, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u3 = _mm256_shuffle_ps(s1, s3, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 u4 = _mm256_shuffle_ps(s4, s6, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u5 = _mm256_shuffle_ps(s4, s6, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 u6 = _mm256_shuffle_ps(s5, s7, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u7 = _mm256_shuffle_ps(s5, s7, _MM_SHUFFLE(3, 2, 3, 2));
      __m256 t[8];
      t[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
      t[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
      t[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
      t[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
      t[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
      t[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
      t[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
      t[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
      // Ascending column order = ascending-j adds in every lane.
      for (int c = 0; c < 8; ++c) acc = _mm256_add_ps(acc, t[c]);
    }
    if (j < d) {
      alignas(32) float accs[8];
      _mm256_store_ps(accs, acc);
      for (int e = 0; e < 8; ++e) {
        float a = accs[e];
        for (std::int64_t r = j; r < d; ++r)
          a += qrow[e][r] * (krow[e][r] + erow[e][r]);
        op[i + e] = a * scale;
      }
    } else {
      _mm256_storeu_ps(op + i, _mm256_mul_ps(acc, _mm256_set1_ps(scale)));
    }
  }
  edge_attention_scores_scalar(qp, kp, ep, src, dst, d, scale, op, i, end);
}

__attribute__((target("avx2"))) void edge_pair_scores_avx2(
    const float* ap, const float* bp, const std::int32_t* src,
    const std::int32_t* dst, float s, float* op, std::int64_t begin,
    std::int64_t end) {
  std::int64_t i = begin;
  const __m256 sv = _mm256_set1_ps(s);
  const __m256 zero = _mm256_setzero_ps();
  for (; i + 8 <= end; i += 8) {
    const __m256i is =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i id =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256 x = _mm256_add_ps(_mm256_i32gather_ps(ap, is, 4),
                                   _mm256_i32gather_ps(bp, id, 4));
    // x > 0 ? x : s*x — blend keeps the scalar branch's single rounding on
    // the negative path (and its NaN behaviour: NaN > 0 is false).
    const __m256 pos = _mm256_cmp_ps(x, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(op + i, _mm256_blendv_ps(_mm256_mul_ps(sv, x), x, pos));
  }
  edge_pair_scores_scalar(ap, bp, src, dst, s, op, i, end);
}

__attribute__((target("avx2"))) void weighted_scatter_add_avx2(
    const float* alpha, const float* vp, const float* ep,
    const std::int32_t* src, const std::int32_t* dst, std::int64_t c,
    float* op, std::int64_t num_edges) {
  // Serial over edges (colliding destinations accumulate in edge order);
  // vector over the disjoint column writes of one edge.
  for (std::int64_t i = 0; i < num_edges; ++i) {
    const float s = alpha[i];
    const __m256 sv = _mm256_set1_ps(s);
    const float* vrow = vp + static_cast<std::int64_t>(src[i]) * c;
    float* drow = op + static_cast<std::int64_t>(dst[i]) * c;
    std::int64_t j = 0;
    if (ep) {
      const float* erow = ep + i * c;
      for (; j + 8 <= c; j += 8) {
        const __m256 t = _mm256_mul_ps(
            sv, _mm256_add_ps(_mm256_loadu_ps(vrow + j),
                              _mm256_loadu_ps(erow + j)));
        _mm256_storeu_ps(drow + j, _mm256_add_ps(_mm256_loadu_ps(drow + j), t));
      }
      for (; j < c; ++j) drow[j] += s * (vrow[j] + erow[j]);
    } else {
      for (; j + 8 <= c; j += 8) {
        const __m256 t = _mm256_mul_ps(sv, _mm256_loadu_ps(vrow + j));
        _mm256_storeu_ps(drow + j, _mm256_add_ps(_mm256_loadu_ps(drow + j), t));
      }
      for (; j < c; ++j) drow[j] += s * vrow[j];
    }
  }
}

__attribute__((target("avx2"))) void segment_softmax_normalize_avx2(
    const float* seg_sum, const std::int32_t* seg, float* op,
    std::int64_t begin, std::int64_t end) {
  std::int64_t i = begin;
  const __m256 zero = _mm256_setzero_ps();
  for (; i + 8 <= end; i += 8) {
    const __m256i sg =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(seg + i));
    const __m256 den = _mm256_i32gather_ps(seg_sum, sg, 4);
    const __m256 q = _mm256_div_ps(_mm256_loadu_ps(op + i), den);
    const __m256 pos = _mm256_cmp_ps(den, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(op + i, _mm256_blendv_ps(zero, q, pos));
  }
  segment_softmax_normalize_scalar(seg_sum, seg, op, i, end);
}

// ---------------------------------------------------------------------------
// AVX-512 bodies for the widest kernels; the rest reuse the AVX2 body at
// the avx512 level (the dispatch switch below).
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) void row_sum_avx512(const float* ap,
                                                       std::int64_t c,
                                                       float* op,
                                                       std::int64_t begin,
                                                       std::int64_t end) {
  std::int64_t i = begin;
  const __m512i stride = _mm512_mullo_epi32(
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
      _mm512_set1_epi32(static_cast<int>(c)));
  for (; i + 16 <= end; i += 16) {
    const float* base = ap + i * c;
    __m512 acc = _mm512_setzero_ps();
    for (std::int64_t j = 0; j < c; ++j)
      acc = _mm512_add_ps(acc, _mm512_i32gather_ps(stride, base + j, 4));
    _mm512_storeu_ps(op + i, acc);
  }
  row_sum_scalar(ap, c, op, i, end);
}

__attribute__((target("avx512f"))) void edge_attention_scores_avx512(
    const float* qp, const float* kp, const float* ep, const std::int32_t* src,
    const std::int32_t* dst, std::int64_t d, float scale, float* op,
    std::int64_t begin, std::int64_t end) {
  std::int64_t i = begin;
  const __m512i dv = _mm512_set1_epi32(static_cast<int>(d));
  const __m512i estride = _mm512_mullo_epi32(
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
      dv);
  for (; i + 16 <= end; i += 16) {
    const __m512i qoff =
        _mm512_mullo_epi32(_mm512_loadu_si512(dst + i), dv);
    const __m512i koff =
        _mm512_mullo_epi32(_mm512_loadu_si512(src + i), dv);
    const float* ebase = ep + i * d;
    __m512 acc = _mm512_setzero_ps();
    for (std::int64_t j = 0; j < d; ++j) {
      const __m512 qv = _mm512_i32gather_ps(qoff, qp + j, 4);
      const __m512 kv = _mm512_i32gather_ps(koff, kp + j, 4);
      const __m512 ev = _mm512_i32gather_ps(estride, ebase + j, 4);
      acc = _mm512_add_ps(acc, _mm512_mul_ps(qv, _mm512_add_ps(kv, ev)));
    }
    _mm512_storeu_ps(op + i, _mm512_mul_ps(acc, _mm512_set1_ps(scale)));
  }
  edge_attention_scores_scalar(qp, kp, ep, src, dst, d, scale, op, i, end);
}

__attribute__((target("avx512f"))) void weighted_scatter_add_avx512(
    const float* alpha, const float* vp, const float* ep,
    const std::int32_t* src, const std::int32_t* dst, std::int64_t c,
    float* op, std::int64_t num_edges) {
  for (std::int64_t i = 0; i < num_edges; ++i) {
    const float s = alpha[i];
    const __m512 sv = _mm512_set1_ps(s);
    const float* vrow = vp + static_cast<std::int64_t>(src[i]) * c;
    float* drow = op + static_cast<std::int64_t>(dst[i]) * c;
    std::int64_t j = 0;
    if (ep) {
      const float* erow = ep + i * c;
      for (; j + 16 <= c; j += 16) {
        const __m512 t = _mm512_mul_ps(
            sv, _mm512_add_ps(_mm512_loadu_ps(vrow + j),
                              _mm512_loadu_ps(erow + j)));
        _mm512_storeu_ps(drow + j, _mm512_add_ps(_mm512_loadu_ps(drow + j), t));
      }
      for (; j < c; ++j) drow[j] += s * (vrow[j] + erow[j]);
    } else {
      for (; j + 16 <= c; j += 16) {
        const __m512 t = _mm512_mul_ps(sv, _mm512_loadu_ps(vrow + j));
        _mm512_storeu_ps(drow + j, _mm512_add_ps(_mm512_loadu_ps(drow + j), t));
      }
      for (; j < c; ++j) drow[j] += s * vrow[j];
    }
  }
}

__attribute__((target("avx512f"))) void gated_mix_avx512(
    const float* mp, const float* bp, const float* dp, float* op,
    std::int64_t c, std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    const float s = bp[i];
    const __m512 sv = _mm512_set1_ps(s);
    const float* mrow = mp + i * c;
    const float* drow = dp + i * 3 * c;
    float* orow = op + i * c;
    std::int64_t j = 0;
    for (; j + 16 <= c; j += 16)
      _mm512_storeu_ps(
          orow + j,
          _mm512_add_ps(_mm512_loadu_ps(mrow + j),
                        _mm512_mul_ps(sv, _mm512_loadu_ps(drow + j))));
    for (; j < c; ++j) orow[j] = mrow[j] + s * drow[j];
  }
}

__attribute__((target("avx512f"))) void residual_concat_avx512(
    const float* rp, const float* mp, float* op, std::int64_t c,
    std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) {
    const float* rrow = rp + i * c;
    const float* mrow = mp + i * c;
    float* orow = op + i * 3 * c;
    std::int64_t j = 0;
    for (; j + 16 <= c; j += 16) {
      const __m512 rv = _mm512_loadu_ps(rrow + j);
      const __m512 mv = _mm512_loadu_ps(mrow + j);
      _mm512_storeu_ps(orow + j, rv);
      _mm512_storeu_ps(orow + c + j, mv);
      _mm512_storeu_ps(orow + 2 * c + j, _mm512_sub_ps(rv, mv));
    }
    for (; j < c; ++j) {
      const float rv = rrow[j], mv = mrow[j];
      orow[j] = rv;
      orow[c + j] = mv;
      orow[2 * c + j] = rv - mv;
    }
  }
}

#endif  // GNNDSE_X86

std::atomic<int> g_edge_attn{-1};  // -1 = not yet resolved
std::once_flag g_edge_attn_once;

}  // namespace

EdgeAttnVariant edge_attn_variant() {
  int v = g_edge_attn.load(std::memory_order_relaxed);
  if (v < 0) {
    std::call_once(g_edge_attn_once, [] {
      const std::string req = util::env_str("GNNDSE_EDGE_ATTN", "gather");
      EdgeAttnVariant var = EdgeAttnVariant::kGather;
      if (req == "transpose") {
        var = EdgeAttnVariant::kTranspose;
      } else if (req != "gather") {
        util::log_warn("GNNDSE_EDGE_ATTN=", req,
                       " not recognized (gather|transpose); using gather");
      }
      g_edge_attn.store(static_cast<int>(var), std::memory_order_relaxed);
    });
    v = g_edge_attn.load(std::memory_order_relaxed);
  }
  return static_cast<EdgeAttnVariant>(v);
}

EdgeAttnVariant set_edge_attn_variant(EdgeAttnVariant v) {
  edge_attn_variant();  // make sure env resolution never overwrites us later
  g_edge_attn.store(static_cast<int>(v), std::memory_order_relaxed);
  return v;
}

const char* edge_attn_variant_name(EdgeAttnVariant v) {
  return v == EdgeAttnVariant::kTranspose ? "transpose" : "gather";
}

// ---------------------------------------------------------------------------
// Dispatch. On non-x86 every level maps to scalar.
// ---------------------------------------------------------------------------

void row_sum_range(SimdLevel level, const float* ap, std::int64_t c, float* op,
                   std::int64_t begin, std::int64_t end) {
#ifdef GNNDSE_X86
  if (level == SimdLevel::kAvx512) return row_sum_avx512(ap, c, op, begin, end);
  if (level == SimdLevel::kAvx2) return row_sum_avx2(ap, c, op, begin, end);
#else
  (void)level;
#endif
  row_sum_scalar(ap, c, op, begin, end);
}

void residual_concat_range(SimdLevel level, const float* rp, const float* mp,
                           float* op, std::int64_t c, std::int64_t begin,
                           std::int64_t end) {
#ifdef GNNDSE_X86
  if (level == SimdLevel::kAvx512)
    return residual_concat_avx512(rp, mp, op, c, begin, end);
  if (level == SimdLevel::kAvx2)
    return residual_concat_avx2(rp, mp, op, c, begin, end);
#else
  (void)level;
#endif
  residual_concat_scalar(rp, mp, op, c, begin, end);
}

void gated_mix_range(SimdLevel level, const float* mp, const float* bp,
                     const float* dp, float* op, std::int64_t c,
                     std::int64_t begin, std::int64_t end) {
#ifdef GNNDSE_X86
  if (level == SimdLevel::kAvx512)
    return gated_mix_avx512(mp, bp, dp, op, c, begin, end);
  if (level == SimdLevel::kAvx2)
    return gated_mix_avx2(mp, bp, dp, op, c, begin, end);
#else
  (void)level;
#endif
  gated_mix_scalar(mp, bp, dp, op, c, begin, end);
}

void edge_attention_scores_range(SimdLevel level, const float* qp,
                                 const float* kp, const float* ep,
                                 const std::int32_t* src,
                                 const std::int32_t* dst, std::int64_t d,
                                 float scale, float* op, std::int64_t begin,
                                 std::int64_t end) {
#ifdef GNNDSE_X86
  if (level == SimdLevel::kAvx512)
    return edge_attention_scores_avx512(qp, kp, ep, src, dst, d, scale, op,
                                        begin, end);
  if (level == SimdLevel::kAvx2) {
    if (edge_attn_variant() == EdgeAttnVariant::kTranspose)
      return edge_attention_scores_avx2_transpose(qp, kp, ep, src, dst, d,
                                                  scale, op, begin, end);
    return edge_attention_scores_avx2(qp, kp, ep, src, dst, d, scale, op,
                                      begin, end);
  }
#else
  (void)level;
#endif
  edge_attention_scores_scalar(qp, kp, ep, src, dst, d, scale, op, begin, end);
}

void edge_pair_scores_range(SimdLevel level, const float* ap, const float* bp,
                            const std::int32_t* src, const std::int32_t* dst,
                            float negative_slope, float* op,
                            std::int64_t begin, std::int64_t end) {
#ifdef GNNDSE_X86
  // The avx512 level reuses the AVX2 body: [E,1] score columns are too
  // narrow for 16-lane gathers to pay off.
  if (level != SimdLevel::kScalar)
    return edge_pair_scores_avx2(ap, bp, src, dst, negative_slope, op, begin,
                                 end);
#else
  (void)level;
#endif
  edge_pair_scores_scalar(ap, bp, src, dst, negative_slope, op, begin, end);
}

void weighted_scatter_add_edges(SimdLevel level, const float* alpha,
                                const float* vp, const float* ep,
                                const std::int32_t* src,
                                const std::int32_t* dst, std::int64_t c,
                                float* op, std::int64_t num_edges) {
#ifdef GNNDSE_X86
  if (level == SimdLevel::kAvx512)
    return weighted_scatter_add_avx512(alpha, vp, ep, src, dst, c, op,
                                       num_edges);
  if (level == SimdLevel::kAvx2)
    return weighted_scatter_add_avx2(alpha, vp, ep, src, dst, c, op,
                                     num_edges);
#else
  (void)level;
#endif
  weighted_scatter_add_scalar(alpha, vp, ep, src, dst, c, op, num_edges);
}

void segment_softmax_normalize(SimdLevel level, const float* seg_sum,
                               const std::int32_t* seg, float* op,
                               std::int64_t begin, std::int64_t end) {
#ifdef GNNDSE_X86
  // avx512 reuses the AVX2 body (gather-bound; 8 lanes saturate it).
  if (level != SimdLevel::kScalar)
    return segment_softmax_normalize_avx2(seg_sum, seg, op, begin, end);
#else
  (void)level;
#endif
  segment_softmax_normalize_scalar(seg_sum, seg, op, begin, end);
}

}  // namespace gnndse::gnn::simd
