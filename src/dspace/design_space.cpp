#include "dspace/design_space.hpp"

#include <algorithm>
#include <stdexcept>

namespace gnndse::dspace {

using hlssim::DesignConfig;
using hlssim::LoopConfig;
using hlssim::PipeMode;

DesignSpace::DesignSpace(const kir::Kernel& kernel) : kernel_(&kernel) {
  loop_sites_.resize(kernel.loops.size());
  for (std::size_t l = 0; l < kernel.loops.size(); ++l) {
    const kir::Loop& loop = kernel.loops[l];
    // Site order within a loop follows the position ids of §4.2:
    // 0 = tile, 1 = pipeline, 2 = parallel.
    if (loop.can_tile) {
      loop_sites_[l].push_back(static_cast<int>(sites_.size()));
      sites_.push_back(
          PragmaSite{static_cast<int>(l), SiteKind::kTile, loop.tile_options});
    }
    if (loop.can_pipeline) {
      loop_sites_[l].push_back(static_cast<int>(sites_.size()));
      sites_.push_back(
          PragmaSite{static_cast<int>(l), SiteKind::kPipeline, {0, 1, 2}});
    }
    if (loop.can_parallel) {
      loop_sites_[l].push_back(static_cast<int>(sites_.size()));
      sites_.push_back(PragmaSite{static_cast<int>(l), SiteKind::kParallel,
                                  loop.parallel_options});
    }
  }
  raw_size_ = 1;
  for (const PragmaSite& s : sites_) {
    raw_size_ *= static_cast<std::uint64_t>(s.options.size());
  }
  pruned_size_ = 1;
  std::uint64_t total = 1;
  for (int top : kernel.top_loops) total *= count_pruned(top, false);
  pruned_size_ = total;
}

std::uint64_t DesignSpace::count_pruned(int loop, bool forced_neutral) const {
  if (forced_neutral) return 1;  // everything below is pinned to neutral
  const kir::Loop& l = kernel_->loops[static_cast<std::size_t>(loop)];
  const std::uint64_t par =
      l.can_parallel ? static_cast<std::uint64_t>(l.parallel_options.size())
                     : 1;
  const std::uint64_t tile =
      l.can_tile ? static_cast<std::uint64_t>(l.tile_options.size()) : 1;

  std::uint64_t children_free = 1;
  for (int ch : l.children) children_free *= count_pruned(ch, false);

  std::uint64_t total;
  if (l.can_pipeline) {
    // off and cg leave children free; fg pins the whole subtree.
    total = par * tile * (2 * children_free + 1);
  } else {
    total = par * tile * children_free;
  }
  return total;
}

DesignConfig DesignSpace::decode(std::uint64_t index) const {
  if (index >= raw_size_) throw std::out_of_range("design index out of range");
  DesignConfig cfg = DesignConfig::neutral(*kernel_);
  for (const PragmaSite& s : sites_) {
    const std::uint64_t radix = s.options.size();
    const std::int64_t opt = s.options[index % radix];
    index /= radix;
    LoopConfig& lc = cfg.loops[static_cast<std::size_t>(s.loop)];
    switch (s.kind) {
      case SiteKind::kTile:
        lc.tile = opt;
        break;
      case SiteKind::kPipeline:
        lc.pipeline = static_cast<PipeMode>(opt);
        break;
      case SiteKind::kParallel:
        lc.parallel = opt;
        break;
    }
  }
  return cfg;
}

std::uint64_t DesignSpace::encode(const DesignConfig& cfg) const {
  std::uint64_t index = 0;
  std::uint64_t mult = 1;
  for (const PragmaSite& s : sites_) {
    const LoopConfig& lc = cfg.loops[static_cast<std::size_t>(s.loop)];
    std::int64_t value;
    switch (s.kind) {
      case SiteKind::kTile:
        value = lc.tile;
        break;
      case SiteKind::kPipeline:
        value = static_cast<std::int64_t>(lc.pipeline);
        break;
      case SiteKind::kParallel:
      default:
        value = lc.parallel;
        break;
    }
    const auto it = std::find(s.options.begin(), s.options.end(), value);
    if (it == s.options.end())
      throw std::invalid_argument("config value not among site options");
    index += mult * static_cast<std::uint64_t>(it - s.options.begin());
    mult *= s.options.size();
  }
  return index;
}

bool DesignSpace::is_pruned(const DesignConfig& cfg) const {
  // Non-neutral pragma under an fg-pipelined ancestor => pruned duplicate.
  for (std::size_t l = 0; l < kernel_->loops.size(); ++l) {
    if (cfg.loops[l].pipeline != PipeMode::kFine) continue;
    for (int d : kernel_->subtree(static_cast<int>(l))) {
      if (d == static_cast<int>(l)) continue;
      const LoopConfig& dc = cfg.loops[static_cast<std::size_t>(d)];
      if (dc.pipeline != PipeMode::kOff || dc.parallel != 1 || dc.tile != 1)
        return true;
    }
  }
  return false;
}

void DesignSpace::for_each(
    const std::function<bool(DesignConfig&&)>& fn,
    std::uint64_t limit) const {
  std::uint64_t emitted = 0;
  for (std::uint64_t i = 0; i < raw_size_; ++i) {
    DesignConfig cfg = decode(i);
    if (is_pruned(cfg)) continue;
    if (!fn(std::move(cfg))) return;
    if (limit != 0 && ++emitted >= limit) return;
  }
}

DesignConfig DesignSpace::sample(util::Rng& rng) const {
  for (int attempt = 0; attempt < 4096; ++attempt) {
    DesignConfig cfg = decode(rng.uniform_int(raw_size_));
    if (!is_pruned(cfg)) return cfg;
  }
  // Pathologically pruned space: fall back to the neutral design.
  return DesignConfig::neutral(*kernel_);
}

std::vector<DesignConfig> DesignSpace::neighbors(
    const DesignConfig& cfg) const {
  std::vector<DesignConfig> out;
  for (const PragmaSite& s : sites_) {
    const LoopConfig& lc = cfg.loops[static_cast<std::size_t>(s.loop)];
    std::int64_t value;
    switch (s.kind) {
      case SiteKind::kTile:
        value = lc.tile;
        break;
      case SiteKind::kPipeline:
        value = static_cast<std::int64_t>(lc.pipeline);
        break;
      case SiteKind::kParallel:
      default:
        value = lc.parallel;
        break;
    }
    const auto it = std::find(s.options.begin(), s.options.end(), value);
    if (it == s.options.end()) continue;
    const auto pos = it - s.options.begin();
    for (int delta : {-1, +1}) {
      const auto next = pos + delta;
      if (next < 0 || next >= static_cast<std::ptrdiff_t>(s.options.size()))
        continue;
      DesignConfig n = cfg;
      LoopConfig& nc = n.loops[static_cast<std::size_t>(s.loop)];
      switch (s.kind) {
        case SiteKind::kTile:
          nc.tile = s.options[static_cast<std::size_t>(next)];
          break;
        case SiteKind::kPipeline:
          nc.pipeline = static_cast<PipeMode>(
              s.options[static_cast<std::size_t>(next)]);
          break;
        case SiteKind::kParallel:
          nc.parallel = s.options[static_cast<std::size_t>(next)];
          break;
      }
      if (!is_pruned(n)) out.push_back(std::move(n));
    }
  }
  return out;
}

std::vector<int> priority_ordered_sites(const DesignSpace& space) {
  const auto& sites = space.sites();
  const auto& kernel = space.kernel();
  std::vector<int> order(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) order[i] = static_cast<int>(i);

  auto kind_priority = [](SiteKind k) {
    switch (k) {
      case SiteKind::kParallel:
        return 0;
      case SiteKind::kPipeline:
        return 1;
      case SiteKind::kTile:
      default:
        return 2;
    }
  };
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const int da = kernel.loop_depth(sites[static_cast<std::size_t>(a)].loop);
    const int db = kernel.loop_depth(sites[static_cast<std::size_t>(b)].loop);
    if (da != db) return da > db;  // innermost first
    return kind_priority(sites[static_cast<std::size_t>(a)].kind) <
           kind_priority(sites[static_cast<std::size_t>(b)].kind);
  });

  // Dependence rule: the parallel pragma of loop L depends on the pipeline
  // pragma of L's parent (fg pipelining subsumes inner parallelization) —
  // move that pipeline site up, directly before the dependent parallel.
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const auto& site = sites[static_cast<std::size_t>(order[pos])];
    if (site.kind != SiteKind::kParallel) continue;
    const int parent = kernel.loops[static_cast<std::size_t>(site.loop)].parent;
    if (parent == -1) continue;
    for (std::size_t later = pos + 1; later < order.size(); ++later) {
      const auto& other = sites[static_cast<std::size_t>(order[later])];
      if (other.loop == parent && other.kind == SiteKind::kPipeline) {
        const int moved = order[static_cast<std::size_t>(later)];
        order.erase(order.begin() + static_cast<std::ptrdiff_t>(later));
        order.insert(order.begin() + static_cast<std::ptrdiff_t>(pos), moved);
        ++pos;  // the parallel site shifted right by one
        break;
      }
    }
  }
  return order;
}

}  // namespace gnndse::dspace
