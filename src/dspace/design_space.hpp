// Design-space generator: enumerates the pragma configurations of a kernel
// (the paper's "Design Space Generator", Fig 2 & 3).
//
// Every loop contributes up to three pragma sites (tile, pipeline,
// parallel — position ids 0/1/2 as in §4.2). The space is the cross
// product of per-site options, reduced by AutoDSE's pruning rules: a
// fine-grained-pipelined loop fully unrolls its sub-loops, so
// configurations that set pragmas under an fg loop are duplicates and are
// pruned (§4.1, §4.4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hlssim/config.hpp"
#include "kir/kernel.hpp"
#include "util/rng.hpp"

namespace gnndse::dspace {

enum class SiteKind : int { kTile = 0, kPipeline = 1, kParallel = 2 };

struct PragmaSite {
  int loop = -1;
  SiteKind kind = SiteKind::kPipeline;
  /// Option values. Pipeline: 0=off, 1=cg, 2=fg. Parallel/tile: factors.
  std::vector<std::int64_t> options;
};

class DesignSpace {
 public:
  explicit DesignSpace(const kir::Kernel& kernel);

  const kir::Kernel& kernel() const { return *kernel_; }
  const std::vector<PragmaSite>& sites() const { return sites_; }
  int num_sites() const { return static_cast<int>(sites_.size()); }

  /// Product of option counts (no pruning).
  std::uint64_t raw_size() const { return raw_size_; }

  /// Exact number of configurations surviving AutoDSE pruning, computed by
  /// dynamic programming over the loop tree (no enumeration).
  std::uint64_t pruned_size() const { return pruned_size_; }

  /// Decodes a mixed-radix index in [0, raw_size()) to a configuration.
  hlssim::DesignConfig decode(std::uint64_t index) const;

  /// Inverse of decode for configurations representable by the sites.
  std::uint64_t encode(const hlssim::DesignConfig& cfg) const;

  /// True when the configuration is removed by the pruning rules
  /// (non-neutral pragma under a fine-grained-pipelined ancestor).
  bool is_pruned(const hlssim::DesignConfig& cfg) const;

  /// Calls `fn` for every non-pruned configuration, moving each freshly
  /// decoded config into the visitor (no caller-side copy needed). The
  /// visitor returns true to continue and false to stop enumerating
  /// immediately — cooperative cancellation of a sweep must not pay for
  /// decoding the rest of a large space. Only sensible when raw_size() is
  /// small enough to sweep; `limit` stops early (0 = all).
  void for_each(const std::function<bool(hlssim::DesignConfig&&)>& fn,
                std::uint64_t limit = 0) const;

  /// Uniform random non-pruned configuration (rejection sampling).
  hlssim::DesignConfig sample(util::Rng& rng) const;

  /// Neighbors of a configuration: all configs differing in exactly one
  /// site by one option step (used by the hybrid explorer's local search).
  std::vector<hlssim::DesignConfig> neighbors(
      const hlssim::DesignConfig& cfg) const;

 private:
  std::uint64_t count_pruned(int loop, bool forced_neutral) const;

  const kir::Kernel* kernel_;
  std::vector<PragmaSite> sites_;
  std::vector<std::vector<int>> loop_sites_;  // loop id -> site indices
  std::uint64_t raw_size_ = 1;
  std::uint64_t pruned_size_ = 0;
};

/// Priority ordering of pragma sites for large-space DSE (paper §4.4):
/// BFS-like traversal starting from the innermost loops (deepest first);
/// within a loop level parallel > pipeline > tile; and a pragma that
/// depends on another (the parallel pragma of a loop depends on the
/// pipeline pragma of its parent, since fg pipelining subsumes it) pulls
/// that pragma up in the list. Returns site indices into sites().
std::vector<int> priority_ordered_sites(const DesignSpace& space);

}  // namespace gnndse::dspace
