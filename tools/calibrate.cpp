// Calibration probe: per kernel, sample the design space and report the
// distribution of simulator outputs (latency range, valid fraction,
// resource spread, synthesis-time spread). Used during development to keep
// the substrate's dynamics aligned with the paper's reported ranges
// (latency 660..12.5M cycles, wide resource spread, nw mostly invalid).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "dspace/design_space.hpp"
#include "kernels/kernels.hpp"
#include "kernels/registry.hpp"
#include "oracle/stack.hpp"
#include "util/rng.hpp"

using namespace gnndse;

int main(int argc, char** argv) {
  oracle::OracleStack oracle;
  util::Rng rng(7);
  // With arguments, probe exactly those kernels — registry names or .json
  // paths. Default: the paper's training + unseen sets.
  auto& reg = kernels::Registry::global();
  std::vector<std::string> names;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) names.push_back(reg.resolve(argv[i]).name);
  } else {
    names = kernels::training_kernel_names();
    for (const auto& n : kernels::unseen_kernel_names()) names.push_back(n);
  }

  std::printf("%-14s %6s %14s %14s | %10s %10s %6s | %8s %8s %8s %8s | %8s\n",
              "kernel", "#prag", "raw", "pruned", "minLat", "maxLat",
              "valid%", "maxUdsp", "maxUbram", "maxUlut", "maxUff", "maxSyn");
  for (const auto& name : names) {
    kir::Kernel k = reg.get(name);
    dspace::DesignSpace ds(k);
    const int samples = 400;
    double min_lat = 1e30, max_lat = 0;
    double max_udsp = 0, max_ubram = 0, max_ulut = 0, max_uff = 0;
    double max_syn = 0;
    int valid = 0;
    for (int s = 0; s < samples; ++s) {
      auto cfg = ds.sample(rng);
      auto r = oracle.evaluate(k, cfg);
      if (!r.valid) continue;
      ++valid;
      min_lat = std::min(min_lat, r.cycles);
      max_lat = std::max(max_lat, r.cycles);
      max_udsp = std::max(max_udsp, r.util_dsp);
      max_ubram = std::max(max_ubram, r.util_bram);
      max_ulut = std::max(max_ulut, r.util_lut);
      max_uff = std::max(max_uff, r.util_ff);
      max_syn = std::max(max_syn, r.synth_seconds);
    }
    // Also evaluate the neutral (no-pragma) design.
    auto rn = oracle.evaluate(k, hlssim::DesignConfig::neutral(k));
    std::printf(
        "%-14s %6d %14llu %14llu | %10.0f %10.0f %5.1f%% | %8.2f %8.2f %8.2f "
        "%8.2f | %7.0fs  neutral=%.0f%s\n",
        name.c_str(), k.num_pragma_sites(),
        static_cast<unsigned long long>(ds.raw_size()),
        static_cast<unsigned long long>(ds.pruned_size()), min_lat, max_lat,
        100.0 * valid / samples, max_udsp, max_ubram, max_ulut, max_uff,
        max_syn, rn.cycles, rn.valid ? "" : " INVALID");
  }
  return 0;
}
