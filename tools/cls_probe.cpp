// Scratch probe for the validity classifier on nw.
#include <cstdio>

#include "db/explorer.hpp"
#include "kernels/registry.hpp"
#include "model/trainer.hpp"
#include "oracle/stack.hpp"

using namespace gnndse;

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 30;
  const float lr = argc > 2 ? std::atof(argv[2]) : 1e-3f;
  oracle::OracleStack oracle;
  util::Rng rng(21);
  auto kernels =
      std::vector<kir::Kernel>{kernels::Registry::global().get("nw")};
  db::Database database = db::generate_initial_database(
      kernels, oracle, rng, [](const std::string&) { return 150; });
  auto c = database.counts_total();
  std::printf("db: %zu total, %zu valid\n", c.total, c.valid);
  model::Normalizer norm = model::Normalizer::fit(database.points());
  model::SampleFactory f;
  model::Dataset ds = model::build_dataset(database, kernels, norm, f);

  model::ModelOptions mo;
  mo.hidden = 32;
  mo.gnn_layers = 3;
  mo.out_dim = 1;
  util::Rng mrng(1);
  model::PredictiveModel m(mo, mrng);
  model::TrainOptions to;
  to.task = model::Task::kClassification;
  to.epochs = 1;
  to.lr = lr;
  model::Trainer tr(m, to);
  for (int e = 0; e < epochs; ++e) {
    float loss = tr.fit(ds, ds.all_indices());
    auto metrics = model::eval_classification(tr, ds, ds.all_indices());
    if (e % 5 == 4 || e == 0)
      std::printf("epoch %2d loss=%.4f acc=%.3f f1=%.3f\n", e + 1, loss,
                  metrics.accuracy, metrics.f1);
  }
  return 0;
}
