// End-to-end training probe: initial database -> dataset -> M7 model.
// Reports loss trajectory, test RMSE per objective, classification quality
// and wall-clock per epoch. Development harness for learning-rate /
// capacity calibration.
#include <cstdio>

#include "db/explorer.hpp"
#include "kernels/kernels.hpp"
#include "model/trainer.hpp"
#include "oracle/stack.hpp"
#include "util/timer.hpp"

using namespace gnndse;

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::int64_t hidden = argc > 2 ? std::atoi(argv[2]) : 64;

  util::Timer total;
  oracle::OracleStack oracle;
  util::Rng rng(42);
  auto kernels = kernels::make_training_kernels();

  util::Timer t_db;
  db::Database database = db::generate_initial_database(kernels, oracle, rng);
  auto counts = database.counts_total();
  std::printf("database: %zu points (%zu valid) in %.1fs\n", counts.total,
              counts.valid, t_db.seconds());

  model::Normalizer norm = model::Normalizer::fit(database.points());
  std::printf("latency norm factor: %.0f\n", norm.norm_factor());

  util::Timer t_ds;
  model::SampleFactory factory;
  model::Dataset ds = model::build_dataset(database, kernels, norm, factory);
  std::printf("dataset: %zu samples in %.1fs\n", ds.samples.size(),
              t_ds.seconds());
  // Graph size stats.
  std::int64_t nmin = 1 << 30, nmax = 0, ntot = 0;
  for (auto& s : ds.samples) {
    nmin = std::min(nmin, s.graph.x.rows());
    nmax = std::max(nmax, s.graph.x.rows());
    ntot += s.graph.x.rows();
  }
  std::printf("graph nodes: min %lld max %lld avg %.1f\n",
              static_cast<long long>(nmin), static_cast<long long>(nmax),
              static_cast<double>(ntot) / ds.samples.size());

  util::Rng split_rng(7);
  auto [train_valid, test_valid] =
      model::Dataset::split(ds.valid_indices(), 0.8, split_rng);
  std::printf("regression train/test: %zu/%zu\n", train_valid.size(),
              test_valid.size());

  model::ModelOptions mopts;
  mopts.kind = model::ModelKind::kM7Full;
  mopts.hidden = hidden;
  util::Rng mrng(1);
  model::PredictiveModel m(mopts, mrng);
  std::printf("model weights: %lld\n",
              static_cast<long long>(m.num_weights()));

  model::TrainOptions topts;
  topts.epochs = 1;
  topts.verbose = false;
  model::Trainer trainer(m, topts);
  for (int e = 0; e < epochs; ++e) {
    util::Timer te;
    float loss = trainer.fit(ds, train_valid);
    auto metrics = model::eval_regression(trainer, ds, test_valid);
    std::printf(
        "epoch %2d  loss=%.4f  test RMSE lat=%.3f dsp=%.3f lut=%.3f ff=%.3f "
        "(%.1fs)\n",
        e + 1, loss, metrics.rmse[model::kLatency], metrics.rmse[model::kDsp],
        metrics.rmse[model::kLut], metrics.rmse[model::kFf], te.seconds());
  }

  std::printf("total %.1fs\n", total.seconds());
  return 0;
}
