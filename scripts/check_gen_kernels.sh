#!/bin/sh
# CLI determinism gate: `gnndse gen-kernels` with a fixed seed must write
# byte-identical .json files on every invocation (the generator draws all
# structure from one seeded util::Rng stream and the frontend serializer is
# canonical). Run twice into fresh directories and require a clean diff.
#
# usage: check_gen_kernels.sh <gnndse-binary> <scratch-dir>
set -e
GNNDSE="$1"
SCRATCH="$2"
[ -n "$GNNDSE" ] && [ -n "$SCRATCH" ] || {
  echo "usage: $0 <gnndse-binary> <scratch-dir>" >&2
  exit 2
}
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
"$GNNDSE" gen-kernels --count 25 --seed 5 --out "$SCRATCH/a" > /dev/null
"$GNNDSE" gen-kernels --count 25 --seed 5 --out "$SCRATCH/b" > /dev/null
COUNT=$(ls "$SCRATCH/a"/*.json | wc -l)
[ "$COUNT" -eq 25 ] || {
  echo "expected 25 kernels, got $COUNT" >&2
  exit 1
}
diff -r "$SCRATCH/a" "$SCRATCH/b"
echo "gen-kernels: 25 kernels byte-identical across runs"
