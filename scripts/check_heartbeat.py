#!/usr/bin/env python3
"""Validate a GNN-DSE heartbeat stream (gnndse.heartbeat.v1 NDJSON).

Stdlib-only. Checks the file obs::HeartbeatSampler appends during a run
(docs/observability.md):

  * every line parses as a JSON object with schema "gnndse.heartbeat.v1"
  * seq starts at 0 and increments by 1 per line
  * elapsed_ms is strictly increasing; unix_ms never decreases
  * counters/gauges are objects of numbers; counters never decrease
    between consecutive samples (registry counters are monotonic)
  * rates is an object of finite numbers

Requirements:
  --min-samples N     at least N samples                        [default 2]
  --allow-restarts    the file may concatenate several runs (seq resets to
                      0); monotonicity is then checked per run segment

Exit code 0 = valid, 1 = invalid, 2 = usage/IO error.
"""

import argparse
import json
import math
import sys

SCHEMA = "gnndse.heartbeat.v1"


def fail(msg):
    print(f"check_heartbeat: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_numeric_map(obj, what, where):
    if not isinstance(obj, dict):
        fail(f"{where}: {what} is not an object")
    for k, v in obj.items():
        if not isinstance(v, (int, float)) or not math.isfinite(v):
            fail(f"{where}: {what}[{k}] = {v!r} is not a finite number")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("stream")
    ap.add_argument("--min-samples", type=int, default=2)
    ap.add_argument("--allow-restarts", action="store_true")
    args = ap.parse_args()

    try:
        with open(args.stream, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        print(f"check_heartbeat: cannot read {args.stream}: {e}",
              file=sys.stderr)
        sys.exit(2)

    if not lines:
        fail("stream is empty")

    n = 0
    prev = None  # previous sample in the current run segment
    segments = 1
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        try:
            s = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{where}: not valid JSON: {e}")
        if not isinstance(s, dict):
            fail(f"{where}: not an object")
        if s.get("schema") != SCHEMA:
            fail(f"{where}: schema is {s.get('schema')!r}, expected {SCHEMA}")
        seq = s.get("seq")
        if not isinstance(seq, int) or seq < 0:
            fail(f"{where}: bad seq {seq!r}")
        if not isinstance(s.get("elapsed_ms"), (int, float)):
            fail(f"{where}: missing numeric elapsed_ms")
        if not isinstance(s.get("unix_ms"), int):
            fail(f"{where}: missing integer unix_ms")
        check_numeric_map(s.get("counters"), "counters", where)
        check_numeric_map(s.get("gauges"), "gauges", where)
        check_numeric_map(s.get("rates"), "rates", where)

        if seq == 0 and prev is not None:
            if not args.allow_restarts:
                fail(f"{where}: seq reset to 0 mid-stream "
                     "(use --allow-restarts for concatenated runs)")
            segments += 1
            prev = None
        if prev is None:
            if seq != 0:
                fail(f"{where}: run segment starts at seq {seq}, expected 0")
        else:
            if seq != prev["seq"] + 1:
                fail(f"{where}: seq {seq} follows {prev['seq']}")
            if s["elapsed_ms"] <= prev["elapsed_ms"]:
                fail(f"{where}: elapsed_ms {s['elapsed_ms']} not greater "
                     f"than previous {prev['elapsed_ms']}")
            if s["unix_ms"] < prev["unix_ms"]:
                fail(f"{where}: unix_ms went backwards")
            for k, v in prev["counters"].items():
                if k in s["counters"] and s["counters"][k] < v:
                    fail(f"{where}: counter {k} decreased "
                         f"({v} -> {s['counters'][k]})")
        prev = s
        n += 1

    if n < args.min_samples:
        fail(f"only {n} samples, need >= {args.min_samples}")

    seg = f", {segments} runs" if segments > 1 else ""
    print(f"check_heartbeat: OK: {args.stream} ({n} samples{seg})")
    sys.exit(0)


if __name__ == "__main__":
    main()
