#!/usr/bin/env python3
"""Validate a GNN-DSE Chrome-trace export (Trace Event Format JSON).

Stdlib-only. Checks the file obs::write_chrome_trace() emits (the
`traceEvents` schema loaded by Perfetto / chrome://tracing):

  * top level: displayTimeUnit, otherData.trace_epoch_unix_us, traceEvents
  * exactly one process_name metadata event; every thread_name metadata
    event names a distinct tid
  * every "X" event has a name, a tid with a thread_name row, numeric
    ts/dur (dur >= 0), and an args object
  * event timestamps are absolute (>= the trace epoch)

Requirements (beyond structure):
  --min-events N          at least N complete ("X") events       [default 1]
  --require-thread NAME   a thread row named NAME exists and has at least
                          one "X" event (repeatable)
  --require-worker-spans  every thread named pool-worker-* has >= 1 "X"
                          event (workers exist whenever the pool has >= 2
                          lanes; combine with GNNDSE_THREADS=N to pin)

Exit code 0 = valid, 1 = invalid, 2 = usage/IO error.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace")
    ap.add_argument("--min-events", type=int, default=1)
    ap.add_argument("--require-thread", action="append", default=[])
    ap.add_argument("--require-worker-spans", action="store_true")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot read {args.trace}: {e}", file=sys.stderr)
        sys.exit(2)

    if doc.get("displayTimeUnit") != "ms":
        fail(f"displayTimeUnit is {doc.get('displayTimeUnit')!r}")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("missing otherData object")
    epoch = other.get("trace_epoch_unix_us")
    if not isinstance(epoch, int) or epoch <= 0:
        fail(f"otherData.trace_epoch_unix_us is {epoch!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents array")

    process_names = []
    thread_names = {}  # tid -> name
    spans_per_tid = {}  # tid -> count of "X" events
    n_events = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        ph = ev.get("ph")
        if ph == "M":
            kind = ev.get("name")
            name = (ev.get("args") or {}).get("name")
            if not isinstance(name, str) or not name:
                fail(f"{where}: metadata event without args.name")
            if kind == "process_name":
                process_names.append(name)
            elif kind == "thread_name":
                tid = ev.get("tid")
                if not isinstance(tid, int):
                    fail(f"{where}: thread_name without integer tid")
                if tid in thread_names:
                    fail(f"{where}: duplicate thread_name for tid {tid}")
                thread_names[tid] = name
            else:
                fail(f"{where}: unknown metadata event {kind!r}")
        elif ph == "X":
            n_events += 1
            if not isinstance(ev.get("name"), str) or not ev["name"]:
                fail(f"{where}: X event without name")
            tid = ev.get("tid")
            if not isinstance(tid, int):
                fail(f"{where}: X event without integer tid")
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < epoch:
                fail(f"{where} ({ev['name']}): ts {ts!r} precedes the "
                     f"trace epoch {epoch}")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where} ({ev['name']}): bad dur {dur!r}")
            if not isinstance(ev.get("args"), dict):
                fail(f"{where} ({ev['name']}): missing args object")
            spans_per_tid[tid] = spans_per_tid.get(tid, 0) + 1
        else:
            fail(f"{where}: unexpected ph {ph!r}")

    if len(process_names) != 1:
        fail(f"expected exactly one process_name event, got {process_names}")
    for tid in spans_per_tid:
        if tid not in thread_names:
            fail(f"tid {tid} has events but no thread_name metadata")
    if n_events < args.min_events:
        fail(f"only {n_events} complete events, need >= {args.min_events}")

    by_name = {}
    for tid, name in thread_names.items():
        by_name.setdefault(name, 0)
        by_name[name] += spans_per_tid.get(tid, 0)
    for name in args.require_thread:
        if name not in by_name:
            fail(f"required thread row missing: {name}")
        if by_name[name] == 0:
            fail(f"thread row {name} has no complete events")
    if args.require_worker_spans:
        workers = [n for n in by_name if n.startswith("pool-worker-")]
        if not workers:
            fail("no pool-worker-* thread rows in the trace")
        for name in sorted(workers):
            if by_name[name] == 0:
                fail(f"worker row {name} has no complete events")

    print(f"check_trace: OK: {args.trace} ({process_names[0]}, "
          f"{len(thread_names)} threads, {n_events} events)")
    sys.exit(0)


if __name__ == "__main__":
    main()
