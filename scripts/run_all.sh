#!/usr/bin/env bash
# Full reproduction driver: build, test, run every bench.
# Usage: scripts/run_all.sh [fast|default|full]
set -u
cd "$(dirname "$0")/.."

scale="${1:-default}"
case "$scale" in
  fast) export GNNDSE_FAST=1 ;;
  full) export GNNDSE_FULL=1 ;;
  default) ;;
  *) echo "usage: $0 [fast|default|full]" >&2; exit 2 ;;
esac

cmake -B build -G Ninja && cmake --build build || exit 1
ctest --test-dir build 2>&1 | tee test_output.txt || exit 1
# Degraded-oracle gate: the end-to-end DSE case must still find a non-empty
# top-M when 20% of HLS-tool attempts crash (docs/oracle.md).
ctest --test-dir build -R '^dse_fault_degradation$' --output-on-failure \
  2>&1 | tee fault_degradation_output.txt || exit 1
# Live-telemetry gates: Chrome-trace + heartbeat round trip against the
# real pipeline, and the report-vs-baseline structural diff
# (docs/observability.md).
ctest --test-dir build \
  -R '^(trace_emit_check|heartbeat_check|report_regression_diff)$' \
  --output-on-failure 2>&1 | tee live_telemetry_output.txt || exit 1
# Serving gate: coalesced predicts, bit-identity vs `gnndse predict`,
# async sweep polling/cancel, and mid-traffic model hot swap against a
# real daemon (docs/serving.md).
ctest --test-dir build -R '^serve_e2e_check$' --output-on-failure \
  2>&1 | tee serve_e2e_output.txt || exit 1
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
