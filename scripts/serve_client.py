#!/usr/bin/env python3
"""Pipelining client for the `gnndse serve` daemon (docs/serving.md).

Stdlib-only. Unlike `gnndse client` (strict request/response per line),
this client sends every request before reading any response — which is the
traffic shape that lets the daemon's batcher coalesce predicts. Responses
are printed in request order, one JSON object per line.

Usage:
  serve_client.py --port P [--host H] REQUEST.jsonl       requests from file
  serve_client.py --port P -                              requests from stdin
  serve_client.py --port P --predict KERNEL.json [-n 32] [--config KEY]
      expand one kernel file into N pipelined predict requests (ids 1..N)
      and summarize the batch sizes the daemon reports.

Examples:
  # Watch coalescing happen:
  scripts/serve_client.py --port 8642 --predict gen_kernels/gen-s7.json -n 32
  # Raw protocol access:
  echo '{"kind":"admin","op":"stats"}' | scripts/serve_client.py --port 8642 -
"""

import argparse
import collections
import json
import socket
import sys


def read_requests(path):
    f = sys.stdin if path == "-" else open(path)
    with f:
        return [line.strip() for line in f if line.strip()]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("requests", nargs="?", default=None,
                    help="file of JSON requests, one per line ('-' = stdin)")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--predict", metavar="KERNEL_JSON",
                    help="send N pipelined predicts for this kernel file")
    ap.add_argument("-n", type=int, default=32,
                    help="predict count for --predict (default 32)")
    ap.add_argument("--config", default=None,
                    help="DesignConfig key for --predict (default neutral)")
    ap.add_argument("--timeout", type=float, default=120.0)
    args = ap.parse_args()

    if bool(args.predict) == bool(args.requests):
        ap.error("exactly one of --predict or a requests file is required")

    if args.predict:
        with open(args.predict) as f:
            kernel = json.load(f)
        lines = []
        for i in range(1, args.n + 1):
            req = {"kind": "predict", "id": i, "kernel": kernel}
            if args.config:
                req["config"] = args.config
            lines.append(json.dumps(req))
    else:
        lines = read_requests(args.requests)

    sock = socket.create_connection((args.host, args.port),
                                    timeout=args.timeout)
    sock.sendall(("\n".join(lines) + "\n").encode())

    responses = []
    buf = b""
    while len(responses) < len(lines):
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                print("serve_client: connection closed early",
                      file=sys.stderr)
                return 1
            buf += chunk
        line, buf = buf.split(b"\n", 1)
        responses.append(line.decode())
        print(responses[-1])
    sock.close()

    if args.predict:
        sizes = collections.Counter()
        ok = 0
        for raw in responses:
            r = json.loads(raw)
            if r.get("ok"):
                ok += 1
                sizes[r.get("batch_size", 0)] += 1
        print(f"serve_client: {ok}/{len(responses)} ok, "
              f"batch sizes {dict(sorted(sizes.items()))}", file=sys.stderr)
        if ok != len(responses):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
