#!/usr/bin/env python3
"""Validate a GNN-DSE telemetry run report (schema_version 2).

Stdlib-only. Checks the JSON structure emitted by obs::report_json()
(docs/observability.md), then asserts the required stage spans, counters,
and gauges are present. Exit code 0 = valid, 1 = invalid, 2 = usage/IO
error.

Usage:
  check_report.py REPORT.json
      [--require-span pipeline/train ...]   (slash-separated path, repeatable)
      [--require-span-anywhere NAME ...]    (any depth, repeatable)
      [--require-counter NAME ...]          (repeatable)
      [--require-gauge NAME ...]            (repeatable)
      [--require-histogram NAME ...]        (repeatable, count must be > 0)
      [--no-defaults]  only check the schema plus explicit requirements

Default requirements (the standing pipeline stages):
  spans:        pipeline/train, pipeline/dse.search, pipeline/hls.evaluate_top
  spans (any):  oracle.lookup, oracle.sim
  counters:     dse.configs_explored, hlssim.evaluations, oracle.misses,
                gnn.template_misses, gnn.fastpath_forwards
  gauges:       parallel.pool_size, parallel.queue_depth
  histograms:   dse.pipeline.stage_ms
"""

import argparse
import json
import sys

DEFAULT_SPANS = [
    "pipeline/train",
    "pipeline/dse.search",
    "pipeline/hls.evaluate_top",
]
# Oracle decorator coverage: the cache probe and the simulator span must
# appear somewhere in the tree (their depth depends on how many decorators
# the oracle stack composed and on which thread's chunk they ran).
DEFAULT_SPANS_ANYWHERE = [
    "oracle.lookup",
    "oracle.sim",
]
DEFAULT_COUNTERS = [
    "dse.configs_explored",
    "hlssim.evaluations",
    # Every evaluation flows through oracle::CachingEvaluator; a pipeline
    # run always evaluates at least one uncached design.
    "oracle.misses",
    # The inference fast path: each kernel's graph template is built at
    # least once, and every DSE chunk prediction runs the tape-free
    # forward. Their absence means the fast path silently fell out of the
    # pipeline.
    "gnn.template_misses",
    "gnn.fastpath_forwards",
]
# Gauges are presence-only (a queue that drained back to 0 is healthy).
# Both are registered when the global pool is constructed, so they must
# exist in any run that touched parallel_for — at every thread count.
DEFAULT_GAUGES = [
    "parallel.pool_size",
    "parallel.queue_depth",
    # Published by the SIMD dispatch layer (src/util/cpu.cpp) as soon as the
    # level resolves — any run that executed a dispatched kernel has it.
    "tensor.simd_level",
]

# Every stage of the sweep engine (featurize / predict / rank) observes
# into the combined stage histogram; its absence means the DSE loop ran
# outside the engine entirely.
DEFAULT_HISTOGRAMS = [
    "dse.pipeline.stage_ms",
]

HISTOGRAM_KEYS = ("count", "sum_ms", "min_ms", "max_ms", "p50_ms", "p95_ms",
                  "buckets")


def fail(msg):
    print(f"check_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_span(span, where):
    if not isinstance(span, dict):
        fail(f"{where}: span is not an object")
    if not isinstance(span.get("name"), str) or not span["name"]:
        fail(f"{where}: span has no name")
    for key in ("start_ms", "duration_ms"):
        if not isinstance(span.get(key), (int, float)):
            fail(f"{where}/{span.get('name')}: missing numeric {key}")
    # v2: every span carries the trace-local id of its recording thread.
    if not isinstance(span.get("tid"), int) or span["tid"] < 0:
        fail(f"{where}/{span['name']}: missing non-negative integer tid")
    if span.get("open"):
        fail(f"{where}/{span['name']}: span was never closed")
    counters = span.get("counters", {})
    if not isinstance(counters, dict):
        fail(f"{where}/{span['name']}: counters is not an object")
    for k, v in counters.items():
        if not isinstance(v, (int, float)):
            fail(f"{where}/{span['name']}: counter {k} is not numeric")
    children = span.get("children")
    if not isinstance(children, list):
        fail(f"{where}/{span['name']}: missing children array")
    for child in children:
        check_span(child, f"{where}/{span['name']}")


def find_span(roots, path):
    """Walks a slash-separated span path; children may repeat (any match)."""
    parts = path.split("/")
    level = roots
    found = None
    for part in parts:
        found = None
        for span in level:
            if span.get("name") == part:
                found = span
                break
        if found is None:
            return None
        level = found.get("children", [])
    return found


def iter_spans(spans):
    for s in spans:
        yield s
        yield from iter_spans(s.get("children", []))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report")
    ap.add_argument("--require-span", action="append", default=[])
    ap.add_argument("--require-span-anywhere", action="append", default=[])
    ap.add_argument("--require-counter", action="append", default=[])
    ap.add_argument("--require-gauge", action="append", default=[])
    ap.add_argument("--require-histogram", action="append", default=[])
    ap.add_argument("--no-defaults", action="store_true")
    args = ap.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_report: cannot read {args.report}: {e}",
              file=sys.stderr)
        sys.exit(2)

    # --- schema -----------------------------------------------------------
    if doc.get("schema_version") != 2:
        fail(f"schema_version is {doc.get('schema_version')!r}, expected 2")
    if not isinstance(doc.get("tool"), str) or not doc["tool"]:
        fail("missing tool name")
    if not isinstance(doc.get("elapsed_seconds"), (int, float)):
        fail("missing numeric elapsed_seconds")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"missing {section} object")
    for name, v in doc["counters"].items():
        if not isinstance(v, int):
            fail(f"counter {name} is not an integer")
    for name, v in doc["gauges"].items():
        if not isinstance(v, (int, float)):
            fail(f"gauge {name} is not numeric")
    for name, h in doc["histograms"].items():
        for key in HISTOGRAM_KEYS:
            if key not in h:
                fail(f"histogram {name} missing {key}")
        total = sum(b["count"] for b in h["buckets"])
        if total != h["count"]:
            fail(f"histogram {name}: bucket counts sum to {total}, "
                 f"count says {h['count']}")
    if not isinstance(doc.get("spans"), list):
        fail("missing spans array")
    for span in doc["spans"]:
        check_span(span, "")

    # --- required stages --------------------------------------------------
    spans = list(args.require_span)
    anywhere = list(args.require_span_anywhere)
    counters = list(args.require_counter)
    gauges = list(args.require_gauge)
    req_histograms = list(args.require_histogram)
    if not args.no_defaults:
        spans += DEFAULT_SPANS
        anywhere += DEFAULT_SPANS_ANYWHERE
        counters += DEFAULT_COUNTERS
        gauges += DEFAULT_GAUGES
        req_histograms += DEFAULT_HISTOGRAMS
    for path in spans:
        if find_span(doc["spans"], path) is None:
            fail(f"required span missing: {path}")
    seen_names = {s.get("name") for s in iter_spans(doc["spans"])}
    for name in anywhere:
        if name not in seen_names:
            fail(f"required span missing (any depth): {name}")
    for name in counters:
        if name not in doc["counters"]:
            fail(f"required counter missing: {name}")
        if doc["counters"][name] <= 0:
            fail(f"required counter {name} is {doc['counters'][name]}, "
                 "expected > 0")
    for name in gauges:
        if name not in doc["gauges"]:
            fail(f"required gauge missing: {name}")
    for name in req_histograms:
        if name not in doc["histograms"]:
            fail(f"required histogram missing: {name}")
        elif doc["histograms"][name]["count"] <= 0:
            fail(f"required histogram {name} has no observations")

    n_spans = sum(1 for _ in iter_spans(doc["spans"]))
    print(f"check_report: OK: {args.report} ({doc['tool']}, "
          f"{len(doc['counters'])} counters, {n_spans} spans)")
    sys.exit(0)


if __name__ == "__main__":
    main()
