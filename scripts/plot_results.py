#!/usr/bin/env python3
"""Render the CSVs written by the bench binaries as figures.

Usage (after running the benches, from the directory holding the CSVs):

    python3 scripts/plot_results.py [--out plots/]

Produces:
    fig6_tsne.png  — the two t-SNE panels of Fig 6, colored by latency
    fig7_dse.png   — the per-kernel speedup bars of Fig 7
Requires matplotlib; the C++ benches do not depend on this script.
"""
import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def plot_fig6(path, out):
    import matplotlib.pyplot as plt

    _, rows = read_csv(path)
    panels = {"initial": ([], [], []), "learned": ([], [], [])}
    for emb, x, y, lat in rows:
        xs, ys, cs = panels[emb]
        xs.append(float(x))
        ys.append(float(y))
        cs.append(float(lat))
    fig, axes = plt.subplots(1, 2, figsize=(10, 4.2))
    for ax, (name, (xs, ys, cs)) in zip(axes, panels.items()):
        sc = ax.scatter(xs, ys, c=cs, cmap="viridis", s=14)
        ax.set_title(
            "(a) initial embeddings" if name == "initial"
            else "(b) embeddings learned by GNN-DSE")
        ax.set_xticks([])
        ax.set_yticks([])
    fig.colorbar(sc, ax=axes, label="latency target (higher = faster)")
    fig.suptitle("Fig 6: t-SNE of stencil design configurations")
    fig.savefig(out, dpi=150, bbox_inches="tight")
    print(f"wrote {out}")


def plot_fig7(path, out):
    import matplotlib.pyplot as plt

    header, rows = read_csv(path)
    rounds = header[1:]
    kernels = [r[0] for r in rows if r[0] != "Average"]
    data = {
        r[0]: [float(v.rstrip("x")) for v in r[1:]]
        for r in rows
    }
    fig, ax = plt.subplots(figsize=(11, 4))
    width = 0.8 / len(rounds)
    for ri, rname in enumerate(rounds):
        xs = [i + ri * width for i in range(len(kernels))]
        ax.bar(xs, [data[k][ri] for k in kernels], width, label=rname)
    ax.axhline(1.0, color="gray", linestyle="--", linewidth=0.8)
    ax.set_xticks([i + 0.4 - width / 2 for i in range(len(kernels))])
    ax.set_xticklabels(kernels, rotation=20)
    ax.set_ylabel("speedup vs best initial-DB design")
    avgs = ", ".join(
        f"{r}: {data['Average'][i]:.2f}x" for i, r in enumerate(rounds))
    ax.set_title(f"Fig 7: GNN-DSE speedup per DSE round ({avgs})")
    ax.legend()
    fig.savefig(out, dpi=150, bbox_inches="tight")
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--out", default=".")
    args = ap.parse_args()
    os.makedirs(args.out, exist_ok=True)
    any_done = False
    if os.path.exists("fig6_tsne.csv"):
        plot_fig6("fig6_tsne.csv", os.path.join(args.out, "fig6_tsne.png"))
        any_done = True
    if os.path.exists("fig7_dse.csv"):
        plot_fig7("fig7_dse.csv", os.path.join(args.out, "fig7_dse.png"))
        any_done = True
    if not any_done:
        print("no fig6_tsne.csv / fig7_dse.csv here — run the benches first",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
