#!/usr/bin/env python3
"""End-to-end gate for the `gnndse serve` daemon (docs/serving.md).

Stdlib-only. Drives a real daemon over its loopback line-JSON protocol and
asserts the serving contracts that matter:

  1. Coalescing: 32 predicts pipelined down one connection are answered in
     batches (serve.batch_size p50 > 1 via admin stats, and per-response
     batch_size fields show multi-request batches).
  2. Bit-identity: the daemon's predicted/p_valid fields are string-equal
     to a direct single-process `gnndse predict` run on the same weight
     files (%.9g formatting round-trips float32, so string-equal means
     bit-equal).
  3. Async sweeps: a sweep returns a job id immediately, polls report
     progress while running (elapsed seconds / configs explored), a second
     sweep cancels cooperatively, and an `evaluate` sweep writes its oracle
     results into the per-client cache namespace.
  4. Hot swap: admin reload-model mid-traffic bumps the model version;
     later predicts carry the new version and (same weight files) the
     identical predictions.
  5. Drain: the admin drain is acknowledged and the daemon exits 0.

Usage:  check_serve.py GNNDSE_BINARY [--workdir DIR]
Exit code 0 = all checks pass, 1 = check failed, 2 = usage/setup error.
"""

import argparse
import json
import os
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import time

SERVE_TIMEOUT_S = 600  # startup includes a (tiny) training run
IO_TIMEOUT_S = 120

HIDDEN = 16
LAYERS = 2
EPOCHS = 2
BUDGET = 3


def fail(msg):
    print(f"check_serve: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


class Client:
    """Pipelining line-JSON client: send many requests before reading any
    response, which is what lets the daemon coalesce them."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=IO_TIMEOUT_S)
        self.buf = b""

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def send_burst(self, objs):
        payload = "".join(json.dumps(o) + "\n" for o in objs)
        self.sock.sendall(payload.encode())

    def recv(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                fail("daemon closed the connection mid-conversation")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line.decode())

    def roundtrip(self, obj):
        self.send(obj)
        return self.recv()


def predicted_key(resp):
    """Canonical string form of the predicted/p_valid payload for
    bit-identity comparison (dict equality would also do, but the string
    makes mismatches obvious in the failure message)."""
    return json.dumps({"predicted": resp["predicted"],
                       "p_valid": resp["p_valid"]}, sort_keys=True)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("binary")
    ap.add_argument("--workdir", default=None)
    args = ap.parse_args()

    binary = os.path.abspath(args.binary)
    if not os.access(binary, os.X_OK):
        print(f"check_serve: not executable: {binary}", file=sys.stderr)
        return 2

    workdir = args.workdir or tempfile.mkdtemp(prefix="check_serve_")
    os.makedirs(workdir, exist_ok=True)
    kdir = os.path.join(workdir, "kernels")
    cache_dir = os.path.join(workdir, "cache")
    weights = os.path.join(workdir, "weights")
    os.makedirs(cache_dir, exist_ok=True)

    # A generated kernel gives us its canonical JSON on disk: the same
    # object rides the wire and feeds `gnndse predict`. Seed 7 is pinned
    # because its pruned design space (~80k configs) exceeds
    # DseOptions::max_exhaustive, so sweeps take the time-limited heuristic
    # path — which is what makes the running-poll and cancel checks below
    # deterministic instead of racing sweep completion.
    subprocess.run([binary, "gen-kernels", "--count", "1", "--seed", "7",
                    "--out", kdir],
                   check=True, timeout=IO_TIMEOUT_S)
    kfiles = [f for f in os.listdir(kdir) if f.endswith(".json")]
    require(len(kfiles) == 1, f"expected one generated kernel, got {kfiles}")
    kpath = os.path.join(kdir, kfiles[0])
    with open(kpath) as f:
        kernel = json.load(f)

    env = dict(os.environ)
    env["GNNDSE_SERVE_BATCH"] = "16"
    env["GNNDSE_SERVE_BATCH_US"] = "50000"
    daemon = subprocess.Popen(
        [binary, "serve", "--port", "0", "--epochs", str(EPOCHS),
         "--hidden", str(HIDDEN), "--layers", str(LAYERS),
         "--budget", str(BUDGET), "--weights", weights,
         "--cache-dir", cache_dir, "--time", "5", "--top", "5"],
        cwd=workdir, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)
    try:
        # Readiness line: "gnndse serve: listening on 127.0.0.1:PORT".
        port = None
        start = time.time()
        while time.time() - start < SERVE_TIMEOUT_S:
            line = daemon.stdout.readline()
            if not line:
                fail("daemon exited before its readiness line")
            m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if m:
                port = int(m.group(1))
                break
        require(port is not None, "no readiness line before timeout")
        c = Client(port)

        # --- 1. coalescing: 32 pipelined predicts --------------------------
        c.send_burst([{"kind": "predict", "id": i, "kernel": kernel}
                      for i in range(1, 33)])
        batch_sizes = []
        first_pred = None
        for i in range(1, 33):
            r = c.recv()
            require(r.get("ok"), f"predict {i} failed: {r}")
            require(r["id"] == i, f"response order broken: {r['id']} != {i}")
            batch_sizes.append(r["batch_size"])
            key = predicted_key(r)
            if first_pred is None:
                first_pred = key
            require(key == first_pred,
                    "identical requests returned different predictions "
                    "(batch composition dependence)")
        require(max(batch_sizes) > 1,
                f"no coalescing: batch sizes {sorted(set(batch_sizes))}")

        # --- 2. bit-identity vs a direct gnndse predict run ----------------
        out = subprocess.run(
            [binary, "predict", kpath, "--weights", weights,
             "--hidden", str(HIDDEN), "--layers", str(LAYERS)],
            check=True, timeout=IO_TIMEOUT_S, capture_output=True, text=True,
            cwd=workdir).stdout.strip()
        require(predicted_key(json.loads(out)) == first_pred,
                f"daemon prediction differs from `gnndse predict`:\n"
                f"  daemon: {first_pred}\n  direct: {out}")

        # --- 3a. running-state polling + cooperative cancellation ----------
        # Job ids are deterministic ("job-1", "job-2", ...), so the poll can
        # ride the same pipelined burst as the sweep itself — it reaches the
        # daemon microseconds after the job thread spawns, long before a
        # 600-second budget runs out.
        c.send_burst([{"kind": "sweep", "kernel": kernel,
                       "time_limit": 600.0, "id": 40},
                      {"kind": "poll", "job": "job-1", "id": 41}])
        r = c.recv()
        require(r.get("ok") and r.get("job") == "job-1",
                f"sweep not accepted: {r}")
        p = c.recv()
        require(p.get("ok") and p["state"] == "running",
                f"immediate poll did not find the sweep running: {p}")
        require("elapsed" in p and "configs_explored" in p
                and "frontier" in p,
                f"running poll lacks progress fields: {p}")
        r = c.roundtrip({"kind": "cancel", "job": "job-1"})
        require(r.get("ok"), f"cancel failed: {r}")
        deadline = time.time() + IO_TIMEOUT_S
        while time.time() < deadline:
            p = c.roundtrip({"kind": "poll", "job": "job-1"})
            if p.get("state") != "running":
                require(p["state"] == "cancelled",
                        f"cancelled sweep finished as: {p}")
                break
            time.sleep(0.2)
        else:
            fail("cancelled sweep never reached a terminal state")

        # --- 3b. bounded sweep completes with a top-M ----------------------
        r = c.roundtrip({"kind": "sweep", "kernel": kernel,
                         "time_limit": 2.0, "top_m": 3})
        job = r["job"]
        deadline = time.time() + IO_TIMEOUT_S
        while time.time() < deadline:
            p = c.roundtrip({"kind": "poll", "job": job})
            require(p.get("ok"), f"poll failed: {p}")
            if p["state"] == "running":
                time.sleep(0.2)
                continue
            require(p["state"] == "done", f"unexpected terminal state: {p}")
            require(p["num_explored"] > 0, f"sweep explored nothing: {p}")
            require(0 < len(p["top"]) <= 3,
                    f"sweep returned a bad top-M: {p}")
            break
        else:
            fail(f"sweep {job} did not finish within {IO_TIMEOUT_S}s")

        # --- 3c. evaluate sweep fills the per-client oracle cache ----------
        r = c.roundtrip({"kind": "sweep", "kernel": kernel, "client": "alice",
                         "time_limit": 1.0, "top_m": 2, "evaluate": True})
        job = r["job"]
        deadline = time.time() + IO_TIMEOUT_S
        while time.time() < deadline:
            p = c.roundtrip({"kind": "poll", "job": job})
            if p.get("state") == "done":
                require(p.get("evaluated"), f"evaluate sweep skipped HLS: {p}")
                break
            time.sleep(0.2)
        else:
            fail("evaluate sweep did not finish")
        require(os.path.exists(os.path.join(cache_dir, "alice.csv")),
                "per-client oracle cache alice.csv was not written")

        # --- 4. model hot swap mid-traffic ---------------------------------
        reqs = [{"kind": "predict", "id": 100 + i, "kernel": kernel}
                for i in range(16)]
        reqs.append({"kind": "admin", "op": "reload-model", "id": 200})
        reqs += [{"kind": "predict", "id": 300 + i, "kernel": kernel}
                 for i in range(16)]
        c.send_burst(reqs)
        versions = set()
        for _ in range(33):
            r = c.recv()
            require(r.get("ok"), f"request failed during hot swap: {r}")
            if r["id"] == 200:
                require(r["model_version"] == 2,
                        f"reload-model did not bump the version: {r}")
                continue
            versions.add(r["model_version"])
            require(predicted_key(r) == first_pred,
                    "prediction changed across a same-weights hot swap")
        require(2 in versions,
                f"no post-swap predict carried version 2 (saw {versions})")

        # --- 5. stats + drain ----------------------------------------------
        s = c.roundtrip({"kind": "admin", "op": "stats"})
        require(s.get("ok"), f"stats failed: {s}")
        require(s["model_version"] == 2, f"stats version: {s}")
        require(s["requests"] >= 70, f"request counter too low: {s}")
        require(s["batches"] >= 2, f"batch counter too low: {s}")
        require(s["batch_p50"] > 1,
                f"serve.batch_size p50 is {s['batch_p50']}: coalescing gate")
        require(s["jobs"] == 3 and s["jobs_running"] == 0,
                f"job accounting: {s}")
        require(s["model_swaps"] == 1, f"swap counter: {s}")

        d = c.roundtrip({"kind": "admin", "op": "drain"})
        require(d.get("ok") and d.get("op") == "drain",
                f"drain not acknowledged: {d}")
        rc = daemon.wait(timeout=IO_TIMEOUT_S)
        require(rc == 0, f"daemon exited {rc} after drain")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)

    print("check_serve: OK (coalescing, bit-identity, sweeps, hot swap, "
          "drain)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
