#!/usr/bin/env bash
# ThreadSanitizer pass over the parallel-execution layer: configures a
# -DGNNDSE_TSAN=ON build in build-tsan/, builds the thread-safety suites
# (test_parallel, test_obs, test_oracle, test_fastpath, test_simd,
# test_serve, test_sweep), and runs them via `ctest -L tsan`. test_sweep
# covers the pipelined sweep engine (producer/consumer slot handoff,
# concurrent multi-head predict, sweeps under factory traffic).
# test_obs includes the live-telemetry races:
# concurrent
# Histogram::observe vs *_snapshot(), heartbeat-sampler start/stop under
# metric hammering, and cross-thread span-context adoption.
#
# Usage: scripts/check_tsan.sh [build-dir]     (default: build-tsan)
# Exits 0 with a notice when the toolchain has no usable TSan runtime
# (e.g. minimal containers), so CI can call it unconditionally.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

# Probe for a working TSan runtime before paying for a full configure.
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cpp" <<'EOF'
#include <thread>
int main() {
  int x = 0;
  std::thread t([&] { x = 1; });
  t.join();
  return x - 1;
}
EOF
CXX_BIN="${CXX:-c++}"
if ! "$CXX_BIN" -fsanitize=thread -o "$probe_dir/probe" "$probe_dir/probe.cpp" \
    2>/dev/null || ! "$probe_dir/probe" 2>/dev/null; then
  echo "check_tsan: no usable ThreadSanitizer runtime on this toolchain; skipping."
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DGNNDSE_TSAN=ON
cmake --build "$BUILD_DIR" --target test_parallel test_obs test_oracle test_fastpath test_simd test_serve test_sweep -j
ctest --test-dir "$BUILD_DIR" -L tsan --output-on-failure -j
