#!/usr/bin/env python3
"""Gate DSE inference latency against a committed baseline.

Stdlib-only. Reads a telemetry run report (obs::report_json, the file the
obs_report_emit ctest fixture writes) and a baseline JSON with the shape

  {"histograms": {"dse.predict_chunk_ms": {"p50_ms": <float>}, ...},
   "gauges": {"dse.sweep_configs_per_sec": {"value": <float>}}}

(bench/BASELINE_perf.json — a pruned copy of a known-good report). For each
baseline histogram present in the report, the report's p50 must not exceed
`ratio` times the baseline p50. Histograms named in the baseline but absent
from the report fail: the instrumented path fell out of the pipeline.
Baseline gauges are throughput floors: the report's value must be at least
baseline / ratio (the inverse band — gauges here are rates, not latencies).

The 2x default absorbs container/CI jitter while still catching the
regressions that matter (an accidental tape fallback in the DSE loop is
>5x). Exit 0 = within budget, 1 = regression, 2 = usage/IO error.

Usage:
  check_perf.py REPORT.json BASELINE.json [--ratio 2.0]
Refresh the baseline from a current report:
  check_perf.py REPORT.json BASELINE.json --update
"""

import argparse
import json
import sys

GATED_HISTOGRAMS = [
    "dse.predict_chunk_ms",
    "dse.featurize_chunk_ms",
    "dse.frontier_keep_ms",
    "dse.pipeline.stage_ms",
]
# Rates gated as floors (report >= baseline / ratio).
GATED_GAUGES = ["dse.sweep_configs_per_sec"]


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report")
    ap.add_argument("baseline")
    ap.add_argument("--ratio", type=float, default=2.0,
                    help="max allowed report_p50 / baseline_p50 (default 2)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite BASELINE from REPORT instead of checking")
    args = ap.parse_args()

    report = load(args.report)
    histograms = report.get("histograms", {})
    gauges = report.get("gauges", {})

    if args.update:
        baseline = {"histograms": {}, "gauges": {}}
        for name in GATED_HISTOGRAMS:
            if name not in histograms:
                print(f"check_perf: report has no histogram {name}",
                      file=sys.stderr)
                sys.exit(2)
            h = histograms[name]
            baseline["histograms"][name] = {
                "p50_ms": h["p50_ms"], "count": h["count"],
            }
        for name in GATED_GAUGES:
            if name not in gauges:
                print(f"check_perf: report has no gauge {name}",
                      file=sys.stderr)
                sys.exit(2)
            baseline["gauges"][name] = {"value": gauges[name]}
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"check_perf: wrote baseline {args.baseline}")
        sys.exit(0)

    base = load(args.baseline).get("histograms", {})
    if not base:
        print("check_perf: baseline has no histograms", file=sys.stderr)
        sys.exit(2)

    failed = False
    for name, ref in base.items():
        if name not in histograms:
            print(f"check_perf: FAIL: report is missing histogram {name}",
                  file=sys.stderr)
            failed = True
            continue
        got = histograms[name].get("p50_ms", 0.0)
        want = ref.get("p50_ms", 0.0)
        if want <= 0:
            print(f"check_perf: baseline p50 for {name} is {want}; skipping")
            continue
        ratio = got / want
        status = "OK" if ratio <= args.ratio else "FAIL"
        print(f"check_perf: {status}: {name} p50 {got:.3f} ms vs baseline "
              f"{want:.3f} ms ({ratio:.2f}x, budget {args.ratio:.1f}x)")
        if ratio > args.ratio:
            failed = True

    for name, ref in load(args.baseline).get("gauges", {}).items():
        want = ref.get("value", 0.0)
        if want <= 0:
            print(f"check_perf: baseline value for {name} is {want}; skipping")
            continue
        if name not in gauges:
            print(f"check_perf: FAIL: report is missing gauge {name}",
                  file=sys.stderr)
            failed = True
            continue
        got = gauges[name]
        floor = want / args.ratio
        status = "OK" if got >= floor else "FAIL"
        print(f"check_perf: {status}: {name} {got:.1f} vs baseline "
              f"{want:.1f} (floor {floor:.1f} at {args.ratio:.1f}x band)")
        if got < floor:
            failed = True
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
