#!/usr/bin/env python3
"""Diff two GNN-DSE run reports and flag regressions.

Stdlib-only. Compares a baseline report (bench/BASELINE_report.json in the
standing ctest gate) against a freshly generated one:

  * counters: every baseline counter must still exist, and the ratio
    (current+1)/(baseline+1) must stay inside [1/R, R]
  * histograms: p50_ms and p95_ms ratios must stay inside [1/R, R]
    (skipped when either side has count < --min-hist-count)
  * spans: every span name in the baseline tree must still appear; with
    --span-ratio R > 0, total duration per name is ratio-checked too
    (off by default — wall-clock is machine-dependent)

Ratios are generous by design: the gate exists to catch structural drift
(a stage or metric silently vanishing, a counter exploding by orders of
magnitude), not to re-litigate machine speed. Tighten per metric with
--threshold NAME=R; drop noisy families with --ignore REGEX.

Usage:
  compare_reports.py BASELINE.json CURRENT.json
      [--counter-ratio R]        default 20.0
      [--hist-ratio R]           default 50.0
      [--span-ratio R]           default 0 (presence only)
      [--min-count N]            skip counters where both sides < N [10]
      [--min-hist-count N]       skip histograms below N samples [5]
      [--threshold NAME=R]       per-metric ratio override (repeatable)
      [--ignore REGEX]           skip matching counter/histogram/span
                                 names entirely (repeatable)
      [--update]                 overwrite BASELINE.json with CURRENT.json
                                 (refreshing the checked-in baseline)

Exit code 0 = no regression, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import re
import shutil
import sys


def die(msg):
    print(f"compare_reports: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")


def iter_spans(spans):
    for s in spans:
        yield s
        yield from iter_spans(s.get("children", []))


def span_durations(doc):
    """Total duration per span name over the whole tree."""
    out = {}
    for s in iter_spans(doc.get("spans", [])):
        out[s["name"]] = out.get(s["name"], 0.0) + s.get("duration_ms", 0.0)
    return out


class Differ:
    def __init__(self, args):
        self.args = args
        self.ignored = [re.compile(p) for p in args.ignore]
        self.overrides = {}
        for spec in args.threshold:
            name, _, ratio = spec.partition("=")
            if not ratio:
                die(f"bad --threshold {spec!r}, expected NAME=RATIO")
            self.overrides[name] = float(ratio)
        self.failures = []
        self.checked = 0

    def skip(self, name):
        return any(p.search(name) for p in self.ignored)

    def ratio_ok(self, name, base, cur, default_ratio, what):
        limit = self.overrides.get(name, default_ratio)
        if limit <= 0:
            return
        ratio = (cur + 1.0) / (base + 1.0)
        self.checked += 1
        if ratio > limit or ratio < 1.0 / limit:
            self.failures.append(
                f"{what} {name}: {base:g} -> {cur:g} "
                f"(ratio {ratio:.2f}, limit {limit:g})")

    def run(self, base, cur):
        a = self.args
        for name, bval in base.get("counters", {}).items():
            if self.skip(name):
                continue
            cval = cur.get("counters", {}).get(name)
            if cval is None:
                self.failures.append(f"counter {name} missing from current")
                continue
            if max(bval, cval) < a.min_count:
                continue
            self.ratio_ok(name, bval, cval, a.counter_ratio, "counter")

        for name, bh in base.get("histograms", {}).items():
            if self.skip(name):
                continue
            ch = cur.get("histograms", {}).get(name)
            if ch is None:
                self.failures.append(f"histogram {name} missing from current")
                continue
            if min(bh["count"], ch["count"]) < a.min_hist_count:
                continue
            for q in ("p50_ms", "p95_ms"):
                self.ratio_ok(f"{name}.{q}", bh[q], ch[q], a.hist_ratio,
                              "histogram")

        base_spans = span_durations(base)
        cur_spans = span_durations(cur)
        for name, bdur in base_spans.items():
            if self.skip(name):
                continue
            if name not in cur_spans:
                self.failures.append(f"span {name} missing from current")
                continue
            self.ratio_ok(name, bdur, cur_spans[name], a.span_ratio, "span")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--counter-ratio", type=float, default=20.0)
    ap.add_argument("--hist-ratio", type=float, default=50.0)
    ap.add_argument("--span-ratio", type=float, default=0.0)
    ap.add_argument("--min-count", type=int, default=10)
    ap.add_argument("--min-hist-count", type=int, default=5)
    ap.add_argument("--threshold", action="append", default=[])
    ap.add_argument("--ignore", action="append", default=[])
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args()

    if args.update:
        load(args.current)  # refuse to install an unparseable baseline
        try:
            shutil.copyfile(args.current, args.baseline)
        except OSError as e:
            die(f"cannot update {args.baseline}: {e}")
        print(f"compare_reports: baseline {args.baseline} updated from "
              f"{args.current}")
        sys.exit(0)

    base = load(args.baseline)
    cur = load(args.current)
    for doc, path in ((base, args.baseline), (cur, args.current)):
        if doc.get("schema_version") != 2:
            die(f"{path}: schema_version "
                f"{doc.get('schema_version')!r}, expected 2")

    differ = Differ(args)
    differ.run(base, cur)
    if differ.failures:
        for f in differ.failures:
            print(f"compare_reports: REGRESSION: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"compare_reports: OK: {args.current} vs {args.baseline} "
          f"({differ.checked} ratio checks)")
    sys.exit(0)


if __name__ == "__main__":
    main()
